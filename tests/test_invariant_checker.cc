/**
 * @file
 * Invariant-checker tests. Two halves, both necessary: a correct core
 * must run entirely clean under the checker (no false positives), and
 * every deliberate pipeline corruption OooCore::corruptForTest can
 * apply must be caught by the expected invariant family (no false
 * negatives — a checker that cannot fail is itself untested).
 */

#include <gtest/gtest.h>

#include "core/core_factory.hh"
#include "fuzz/differential_fuzzer.hh"
#include "fuzz/invariant_checker.hh"
#include "harness/profiles.hh"
#include "isa/random_program.hh"

namespace nda {
namespace {

constexpr FuzzCorruption kAllCorruptions[] = {
    FuzzCorruption::kFreeListLeak,   FuzzCorruption::kDoubleFree,
    FuzzCorruption::kEarlyWakeup,    FuzzCorruption::kRenameCorrupt,
    FuzzCorruption::kRobReorder,     FuzzCorruption::kMshrDupPrimary,
    FuzzCorruption::kMshrGhostTarget, FuzzCorruption::kMshrOverflow,
    FuzzCorruption::kMshrStuckFill,
    FuzzCorruption::kCrossThreadRenameBleed,
};

TEST(InvariantChecker, CleanRunStaysClean)
{
    for (Profile profile : allProfiles()) {
        const SimConfig cfg = makeProfile(profile);
        if (cfg.inOrder)
            continue;
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            const Program prog =
                generateRandomProgram(seed, paramsForSeed(seed));
            auto core = makeCore(prog, cfg);
            InvariantChecker checker;
            core->attachChecker(&checker);
            core->run(~std::uint64_t{0} >> 1, 20'000'000);
            ASSERT_TRUE(core->halted())
                << cfg.name << " seed " << seed;
            EXPECT_GT(checker.cyclesChecked(), 0u);
            EXPECT_TRUE(checker.clean())
                << cfg.name << " seed " << seed << ": "
                << InvariantChecker::describe(
                       checker.violations().front());
        }
    }
}

TEST(InvariantChecker, CleanRunStaysCleanWithMshrs)
{
    // Exercise the MSHR invariants on live non-blocking state (the
    // all-profile sweep above runs the legacy eager model).
    for (Profile profile :
         {Profile::kOoo, Profile::kStrict, Profile::kFullProtection}) {
        SimConfig cfg = makeProfile(profile);
        cfg.memory.mshrEntries = 4;
        for (std::uint64_t seed = 1; seed <= 2; ++seed) {
            const Program prog =
                generateRandomProgram(seed, paramsForSeed(seed));
            auto core = makeCore(prog, cfg);
            InvariantChecker checker;
            core->attachChecker(&checker);
            core->run(~std::uint64_t{0} >> 1, 20'000'000);
            ASSERT_TRUE(core->halted())
                << cfg.name << " seed " << seed;
            EXPECT_TRUE(checker.clean())
                << cfg.name << " seed " << seed << ": "
                << InvariantChecker::describe(
                       checker.violations().front());
        }
    }
}

TEST(InvariantChecker, DetachedCoreIgnoresChecker)
{
    // attachChecker is a no-op on the in-order model; the checker
    // must simply never be consulted.
    const Program prog = generateRandomProgram(1);
    auto core = makeCore(prog, makeProfile(Profile::kInOrder));
    InvariantChecker checker;
    core->attachChecker(&checker);
    core->run(~std::uint64_t{0} >> 1, 20'000'000);
    ASSERT_TRUE(core->halted());
    EXPECT_EQ(checker.cyclesChecked(), 0u);
}

TEST(InvariantChecker, ResetClearsState)
{
    const Program prog = generateRandomProgram(1);
    InjectionOutcome out = runWithInjection(
        prog, Profile::kStrict, FuzzCorruption::kRenameCorrupt, 0);
    ASSERT_TRUE(out.applied);
    ASSERT_GT(out.violations, 0u);

    InvariantChecker checker;
    checker.reset();
    EXPECT_TRUE(checker.clean());
    EXPECT_EQ(checker.cyclesChecked(), 0u);
    EXPECT_TRUE(checker.violations().empty());
}

class InjectionTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(InjectionTest, CorruptionCaughtByExpectedInvariant)
{
    const auto kind =
        static_cast<FuzzCorruption>(std::get<0>(GetParam()));
    const auto profile = static_cast<Profile>(std::get<1>(GetParam()));

    const Program prog = generateRandomProgram(1, paramsForSeed(1));
    const InjectionOutcome out =
        runWithInjection(prog, profile, kind, 200);
    ASSERT_TRUE(out.applied)
        << fuzzCorruptionName(kind) << " on " << profileName(profile);
    EXPECT_GT(out.violations, 0u);

    const InvariantKind expected = expectedInvariant(kind);
    bool caught = false;
    for (InvariantKind k : out.kinds)
        caught = caught || k == expected;
    EXPECT_TRUE(caught)
        << fuzzCorruptionName(kind) << " on " << profileName(profile)
        << " not reported as " << invariantKindName(expected)
        << "; first: " << out.firstViolation;
}

INSTANTIATE_TEST_SUITE_P(
    AllCorruptions, InjectionTest,
    ::testing::Combine(
        ::testing::Range(
            static_cast<int>(FuzzCorruption::kFreeListLeak),
            static_cast<int>(FuzzCorruption::kCrossThreadRenameBleed) + 1),
        ::testing::Values(static_cast<int>(Profile::kStrict),
                          static_cast<int>(Profile::kFullProtection))),
    [](const auto &info) {
        std::string name =
            std::string(fuzzCorruptionName(static_cast<FuzzCorruption>(
                std::get<0>(info.param)))) +
            "_on_" +
            profileName(static_cast<Profile>(std::get<1>(info.param)));
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(InvariantChecker, InjectionNeverAppliesInOrder)
{
    const Program prog = generateRandomProgram(1);
    for (FuzzCorruption kind : kAllCorruptions) {
        const InjectionOutcome out = runWithInjection(
            prog, Profile::kInOrder, kind, 0);
        EXPECT_FALSE(out.applied) << fuzzCorruptionName(kind);
        EXPECT_EQ(out.violations, 0u);
    }
}

TEST(InvariantChecker, NamesRoundTrip)
{
    for (FuzzCorruption kind : kAllCorruptions) {
        EXPECT_EQ(fuzzCorruptionFromName(fuzzCorruptionName(kind)),
                  kind);
    }
    EXPECT_EQ(fuzzCorruptionFromName("no-such-corruption"),
              FuzzCorruption::kNone);
}

} // namespace
} // namespace nda
