/**
 * @file
 * Corpus serialization tests: a program must survive
 * serialize -> parse -> serialize byte-identically, the parsed copy
 * must behave identically on the interpreter, and malformed input
 * must fail loudly rather than replay the wrong program.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "fuzz/differential_fuzzer.hh"
#include "isa/interpreter.hh"
#include "isa/program_io.hh"
#include "isa/random_program.hh"

namespace nda {
namespace {

TEST(ProgramIo, RoundTripIsStable)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const Program orig =
            generateRandomProgram(seed, paramsForSeed(seed));
        const std::string text = serializeProgram(orig);
        const Program parsed = parseProgram(text);
        EXPECT_EQ(serializeProgram(parsed), text) << "seed " << seed;
    }
}

TEST(ProgramIo, ParsedProgramBehavesIdentically)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const Program orig =
            generateRandomProgram(seed, paramsForSeed(seed));
        const Program parsed = parseProgram(serializeProgram(orig));

        Interpreter a(orig);
        Interpreter b(parsed);
        a.run(5'000'000);
        b.run(5'000'000);
        ASSERT_TRUE(a.halted()) << "seed " << seed;
        ASSERT_TRUE(b.halted()) << "seed " << seed;
        EXPECT_EQ(a.instCount(), b.instCount()) << "seed " << seed;
        EXPECT_EQ(a.faultCount(), b.faultCount()) << "seed " << seed;
        for (RegId r = 0; r < kNumArchRegs; ++r)
            EXPECT_EQ(a.reg(r), b.reg(r)) << "seed " << seed << " r"
                                          << static_cast<int>(r);
    }
}

TEST(ProgramIo, CommentsAreIgnored)
{
    const Program orig = generateRandomProgram(1);
    const std::string text = "# header line one\n# two\n" +
                             serializeProgram(orig);
    EXPECT_EQ(serializeProgram(parseProgram(text)),
              serializeProgram(orig));
}

TEST(ProgramIo, MalformedInputThrows)
{
    EXPECT_THROW(parseProgram(""), std::runtime_error);
    EXPECT_THROW(parseProgram("bogus directive\n"), std::runtime_error);
    // A mangled instruction line must name the problem, not silently
    // decode to something else.
    const std::string good = serializeProgram(generateRandomProgram(1));
    std::string bad = good;
    const auto pos = bad.rfind("halt");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 4, "hlat");
    EXPECT_THROW(parseProgram(bad), std::runtime_error);
}

} // namespace
} // namespace nda
