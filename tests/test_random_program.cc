/**
 * @file
 * Tests of the random-program generator itself: termination,
 * determinism, and structural coverage of the instruction set.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/interpreter.hh"
#include "isa/random_program.hh"

namespace nda {
namespace {

TEST(RandomProgram, DeterministicForSeed)
{
    const Program a = generateRandomProgram(7);
    const Program c = generateRandomProgram(7);
    ASSERT_EQ(a.code.size(), c.code.size());
    for (std::size_t i = 0; i < a.code.size(); ++i) {
        EXPECT_EQ(a.code[i].op, c.code[i].op);
        EXPECT_EQ(a.code[i].imm, c.code[i].imm);
    }
}

TEST(RandomProgram, SeedsDiffer)
{
    const Program a = generateRandomProgram(1);
    const Program c = generateRandomProgram(2);
    bool differ = a.code.size() != c.code.size();
    for (std::size_t i = 0;
         !differ && i < a.code.size() && i < c.code.size(); ++i) {
        differ = a.code[i].op != c.code[i].op ||
                 a.code[i].imm != c.code[i].imm;
    }
    EXPECT_TRUE(differ);
}

TEST(RandomProgram, AlwaysTerminates)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        Interpreter it(generateRandomProgram(seed));
        it.run(5'000'000);
        EXPECT_TRUE(it.halted()) << "seed " << seed;
        EXPECT_EQ(it.faultCount(), 0u)
            << "random programs must be fault-free (seed " << seed
            << ")";
    }
}

TEST(RandomProgram, SpillsResultsForComparison)
{
    const Program p = generateRandomProgram(3);
    Interpreter it(p);
    it.run(5'000'000);
    ASSERT_TRUE(it.halted());
    // The spill area must reflect the final register values.
    for (RegId r = 0; r < 18; ++r) {
        EXPECT_EQ(it.mem().read(kRandomProgResultBase +
                                    static_cast<Addr>(r) * 8, 8),
                  it.reg(r));
    }
}

TEST(RandomProgram, CoversInstructionClasses)
{
    std::set<Opcode> seen;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        for (const MicroOp &u : generateRandomProgram(seed).code)
            seen.insert(u.op);
    }
    EXPECT_TRUE(seen.count(Opcode::kLoad));
    EXPECT_TRUE(seen.count(Opcode::kStore));
    EXPECT_TRUE(seen.count(Opcode::kCallReg));
    EXPECT_TRUE(seen.count(Opcode::kRet));
    EXPECT_TRUE(seen.count(Opcode::kMul));
    EXPECT_TRUE(seen.count(Opcode::kDiv));
    EXPECT_GT(seen.size(), 15u);
}

TEST(RandomProgram, ExtendedOpcodeClasses)
{
    RandomProgramParams params;
    params.useFences = true;
    params.useClflush = true;
    params.useRdtsc = true;
    params.callChainDepth = 4;
    std::set<Opcode> seen;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const Program p = generateRandomProgram(seed, params);
        for (const MicroOp &u : p.code)
            seen.insert(u.op);
        Interpreter it(p);
        it.run(5'000'000);
        EXPECT_TRUE(it.halted()) << "seed " << seed;
        EXPECT_EQ(it.faultCount(), 0u) << "seed " << seed;
    }
    EXPECT_TRUE(seen.count(Opcode::kFence));
    EXPECT_TRUE(seen.count(Opcode::kClflush));
    EXPECT_TRUE(seen.count(Opcode::kRdTsc));
    EXPECT_TRUE(seen.count(Opcode::kCall)) << "direct call chain";
    EXPECT_TRUE(seen.count(Opcode::kRet));
}

TEST(RandomProgram, RdtscAlwaysNeutralized)
{
    // Timing must never reach comparable architectural state: every
    // RDTSC is immediately followed by rd = (rd == rd).
    RandomProgramParams params;
    params.useRdtsc = true;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const Program p = generateRandomProgram(seed, params);
        for (std::size_t i = 0; i < p.code.size(); ++i) {
            if (p.code[i].op != Opcode::kRdTsc)
                continue;
            ASSERT_LT(i + 1, p.code.size());
            const MicroOp &next = p.code[i + 1];
            EXPECT_EQ(next.op, Opcode::kCmpEq);
            EXPECT_EQ(next.rd, p.code[i].rd);
            EXPECT_EQ(next.rs1, p.code[i].rd);
            EXPECT_EQ(next.rs2, p.code[i].rd);
        }
    }
}

TEST(RandomProgram, ExtrasOffByDefault)
{
    // Disabled extras must not appear (and must not perturb existing
    // seed streams, which their absence here witnesses).
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        for (const MicroOp &u : generateRandomProgram(seed).code) {
            EXPECT_NE(u.op, Opcode::kFence);
            EXPECT_NE(u.op, Opcode::kClflush);
            EXPECT_NE(u.op, Opcode::kRdTsc);
            EXPECT_NE(u.op, Opcode::kCall);
        }
    }
}

TEST(RandomProgram, RespectsFeatureToggles)
{
    RandomProgramParams no_mem;
    no_mem.useMemory = false;
    const Program p = generateRandomProgram(4, no_mem);
    for (const MicroOp &u : p.code) {
        if (u.op == Opcode::kLoad) {
            // Only the indirect-call table load and result spill
            // remain; body loads are disabled. The table load uses
            // register kFnPtr = 27 as destination.
            EXPECT_EQ(u.rd, 27);
        }
    }
}

} // namespace
} // namespace nda
