/**
 * @file
 * Tests of the `specoff`/`specon` ISA extension — the paper's §8
 * mitigation sketch (Listing 4): temporarily disable control
 * speculation while a secret lives in a general-purpose register.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "attacks/attack_base.hh"
#include "attacks/covert_channel.hh"
#include "core/ooo_core.hh"
#include "harness/profiles.hh"
#include "isa/interpreter.hh"
#include "isa/program.hh"

namespace nda {
namespace {

using namespace attack_layout;

TEST(SpecOff, ArchitecturallyTransparent)
{
    ProgramBuilder b("transparent");
    b.movi(1, 0);
    b.movi(2, 20);
    auto loop = b.label();
    b.specoff();
    b.addi(1, 1, 1);
    b.specon();
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    const Program p = b.build();

    Interpreter ref(p);
    ref.run(1'000'000);
    OooCore core(p, makeProfile(Profile::kOoo));
    core.run(~std::uint64_t{0}, 1'000'000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.archReg(1), ref.reg(1));
    EXPECT_EQ(core.committedInsts(), ref.instCount());
}

TEST(SpecOff, DisablesBranchPredictionInsideWindow)
{
    // Inside the window every conditional branch stalls fetch until
    // it resolves, so there can be no wrong-path execution and no
    // mispredict squashes from those branches.
    ProgramBuilder b("nopred");
    b.movi(1, 0);
    b.movi(2, 200);
    b.specoff();
    auto loop = b.label();
    b.muli(3, 1, 0x9E3779B1);        // pseudo-random condition
    b.andi(3, 3, 1);
    b.movi(4, 0);
    auto skip = b.futureLabel();
    b.bne(3, 4, skip);               // 50/50 data-dependent
    b.addi(5, 5, 1);
    b.bind(skip);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.specon();
    b.halt();
    OooCore core(b.build(), makeProfile(Profile::kOoo));
    core.run(~std::uint64_t{0}, 1'000'000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.counters().condMispredicts,
              core.counters().condBranches)
        << "unpredicted branches always 'mispredict' the sentinel";
}

TEST(SpecOff, SlowsExecution)
{
    // The window trades performance for safety: the same loop runs
    // slower with speculation off.
    auto build = [](bool spec_off) {
        ProgramBuilder b("cost");
        b.movi(1, 0);
        b.movi(2, 500);
        if (spec_off)
            b.specoff();
        auto loop = b.label();
        b.addi(1, 1, 1);
        b.blt(1, 2, loop);
        b.halt();
        return b.build();
    };
    OooCore fast(build(false), makeProfile(Profile::kOoo));
    fast.run(~std::uint64_t{0}, 10'000'000);
    OooCore slow(build(true), makeProfile(Profile::kOoo));
    slow.run(~std::uint64_t{0}, 10'000'000);
    EXPECT_GT(slow.cycle(), 2 * fast.cycle());
}

/**
 * Listing 4 end-to-end: the GPR-resident-secret attack of §4.2, but
 * with the victim guarding its secret window with specoff/specon
 * and scrubbing the register before re-enabling speculation. On an
 * INSECURE OoO core (no NDA), the unguarded victim (which neither
 * scrubs nor guards) leaks; the guarded one does not — inside the
 * window the `ret` is not predicted, so no wrong path ever runs with
 * the secret live in r25.
 */
AttackResult
runGprAttack(bool guarded)
{
    constexpr Addr kRetSlot = kVictimBase + 0x900;
    ProgramBuilder b(guarded ? "gpr-guarded" : "gpr-unguarded");
    b.zeroSegment(kProbeBase, 256 * kProbeStride);
    b.zeroSegment(kResultsBase, 256 * 8);
    b.segment(kSecretAddr, {0x5A});

    auto main_l = b.futureLabel();
    b.jmp(main_l);

    auto victim = b.label();
    if (guarded)
        b.specoff();                 // Listing 4 line 1
    b.movi(9, static_cast<std::int64_t>(kSecretAddr));
    b.load(25, 9, 0, 1);             // secret -> GPR
    b.movi(19, static_cast<std::int64_t>(kRetSlot));
    b.load(20, 19, 0, 8);            // slow corrupted return address
    b.mov(30, 20);
    if (guarded) {
        b.xor_(25, 25, 25);          // Listing 4 line 4: scrub
        b.specon();                  // Listing 4 line 5
    }
    b.ret(30);

    const Addr recover_pc = b.here();
    b.word(kRetSlot, recover_pc);
    emitCacheRecoverLoop(b);
    b.halt();

    b.bind(main_l);
    b.movi(1, static_cast<std::int64_t>(kSecretAddr));
    b.prefetch(1, 0);
    emitProbeFlush(b);
    b.movi(1, static_cast<std::int64_t>(kRetSlot));
    b.clflush(1, 0);
    b.fence();
    b.call(30, victim);
    // Wrong-path gadget at the predicted return target: transmit the
    // GPR contents. With the guard, this is never fetched because the
    // ret is not predicted. (The scrub alone does NOT help on the
    // unguarded path: the wrong path starts before the scrub commits.)
    b.shli(15, 25, 9);
    b.movi(16, static_cast<std::int64_t>(kProbeBase));
    b.add(16, 16, 15);
    b.load(17, 16, 0, 1);
    b.halt();                        // unreachable

    const Program prog = b.build();
    OooCore core(prog, makeProfile(Profile::kOoo)); // NO NDA
    core.run(~std::uint64_t{0}, 10'000'000);
    EXPECT_TRUE(core.halted());

    AttackResult r;
    r.secret = 0x5A;
    r.threshold = 30.0;
    std::array<double, 256> times{};
    for (int g = 0; g < 256; ++g) {
        times[g] = static_cast<double>(core.mem().read(
            kResultsBase + static_cast<Addr>(g) * 8, 8));
    }
    r.timings = times;
    std::array<double, 256> sorted = times;
    std::nth_element(sorted.begin(), sorted.begin() + 128,
                     sorted.end());
    r.signal = sorted[128] - times[static_cast<std::size_t>(r.secret)];
    return r;
}

TEST(SpecOff, Listing4BlocksGprLeakWithoutNda)
{
    const AttackResult unguarded = runGprAttack(false);
    EXPECT_TRUE(unguarded.leaked())
        << "sanity: the unguarded victim must leak on insecure OoO";

    const AttackResult guarded = runGprAttack(true);
    EXPECT_FALSE(guarded.leaked())
        << "the specoff window must prevent the mis-steered return";
}

} // namespace
} // namespace nda
