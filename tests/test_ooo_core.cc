/**
 * @file
 * Behavioural tests of the OoO core: architectural correctness,
 * speculation and recovery, wrong-path side effects (the attack
 * substrate), serialization, and fault semantics.
 */

#include <gtest/gtest.h>

#include "core/core_factory.hh"
#include "core/ooo_core.hh"
#include "isa/interpreter.hh"
#include "isa/program.hh"

namespace nda {
namespace {

std::unique_ptr<OooCore>
runOoo(const Program &p, SimConfig cfg = {}, Cycle max_cycles = 200000)
{
    auto core = std::make_unique<OooCore>(p, cfg);
    core->run(~std::uint64_t{0}, max_cycles);
    EXPECT_TRUE(core->halted());
    return core;
}

TEST(OooCore, AluChainResult)
{
    ProgramBuilder b("alu");
    b.movi(1, 6);
    b.movi(2, 7);
    b.mul(3, 1, 2);
    b.addi(3, 3, 1);
    b.div(4, 3, 2);
    b.halt();
    auto core = runOoo(b.build());
    EXPECT_EQ(core->archReg(3), 43u);
    EXPECT_EQ(core->archReg(4), 6u);
}

TEST(OooCore, StoreLoadForwarding)
{
    ProgramBuilder b("fwd");
    b.zeroSegment(0x1000, 64);
    b.movi(1, 0x1000);
    b.movi(2, 1234);
    b.store(1, 0, 2, 8);
    b.load(3, 1, 0, 8);   // must forward from the in-flight store
    b.halt();
    auto core = runOoo(b.build());
    EXPECT_EQ(core->archReg(3), 1234u);
    EXPECT_EQ(core->mem().read(0x1000, 8), 1234u);
}

TEST(OooCore, MemoryOrderViolationRecovers)
{
    // A store with a late-resolving address followed by a load to the
    // same address: the load speculatively reads stale data, the
    // violation squashes it, and the replay returns the stored value.
    ProgramBuilder b("ssb");
    b.word(0x1000, 0xAA);            // stale value
    b.word(0x2000, 0x1000);          // pointer cell
    b.movi(1, 0x2000);
    b.clflush(1, 0);
    b.fence();
    b.movi(2, 0x55);
    b.load(3, 1, 0, 8);              // slow: store address dep
    b.store(3, 0, 2, 1);             // [0x1000] = 0x55, address late
    b.movi(4, 0x1000);
    b.load(5, 4, 0, 1);              // bypasses, then replays
    b.halt();
    auto core = runOoo(b.build());
    EXPECT_EQ(core->archReg(5), 0x55u)
        << "architectural result must see the store";
    EXPECT_GE(core->counters().memOrderViolations, 1u);
}

TEST(OooCore, BranchMispredictRecovery)
{
    // Data-dependent branch with a slow condition: wrong path must be
    // squashed and the architectural result must be correct.
    ProgramBuilder b("mispredict");
    b.word(0x1000, 100);
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.fence();
    b.load(2, 1, 0, 8);              // 100 (slow)
    b.movi(3, 50);
    auto big = b.futureLabel();
    b.bgeu(2, 3, big);               // taken (100 >= 50); predicted NT
    b.movi(4, 111);                  // wrong path
    b.halt();
    b.bind(big);
    b.movi(4, 222);
    b.halt();
    auto core = runOoo(b.build());
    EXPECT_EQ(core->archReg(4), 222u);
    EXPECT_GE(core->counters().squashes, 1u);
}

TEST(OooCore, WrongPathCacheFillSurvivesSquash)
{
    // The attack substrate (paper §2): wrong-path loads leave cache
    // state that the squash does not revert.
    ProgramBuilder b("wrongpath");
    b.word(0x1000, 1);               // condition cell
    b.zeroSegment(0x9000, 64);       // wrong-path target line
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.fence();
    b.load(2, 1, 0, 8);              // 1 (slow)
    b.movi(3, 0);
    auto skip = b.futureLabel();
    b.bne(2, 3, skip);               // taken; predicted not-taken
    b.movi(4, 0x9000);
    b.load(5, 4, 0, 8);              // wrong-path load
    b.bind(skip);
    b.halt();
    auto core = runOoo(b.build());
    EXPECT_EQ(core->archReg(5), 0u) << "wrong path must not commit";
    EXPECT_TRUE(core->hierarchy().l1d().probe(0x9000))
        << "wrong-path fill must survive the squash";
}

TEST(OooCore, WrongPathBtbUpdateSurvivesSquash)
{
    // Paper §3: speculative BTB updates are not reverted.
    ProgramBuilder b("btbpoison");
    b.word(0x1000, 1);
    auto main_l = b.futureLabel();
    b.jmp(main_l);
    const Addr fn_pc = b.here();
    b.ret(28);
    b.bind(main_l);
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.fence();
    b.load(2, 1, 0, 8);
    b.movi(3, 0);
    auto skip = b.futureLabel();
    b.bne(2, 3, skip);               // taken; predicted not-taken
    b.movi(6, static_cast<std::int64_t>(fn_pc));
    const Addr callr_pc = b.here();
    b.callr(28, 6);                  // wrong-path indirect call
    b.bind(skip);
    b.halt();
    auto core = runOoo(b.build());
    auto target = core->predictor().btb().probe(callr_pc);
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(*target, fn_pc);
}

TEST(OooCore, FaultSquashesDependents)
{
    ProgramBuilder b("fault");
    b.segment(0x4000, {0x7}, MemPerm::kKernel);
    b.movi(1, 0x4000);
    b.load(2, 1, 0, 1);              // faults at commit
    b.addi(3, 2, 1);                 // consumes forwarded value
    b.halt();
    auto handler = b.label();
    b.movi(4, 9);
    b.halt();
    b.faultHandlerAt(handler);
    auto core = runOoo(b.build());
    EXPECT_EQ(core->archReg(4), 9u) << "handler must run";
    EXPECT_EQ(core->archReg(3), 0u)
        << "dependent of faulting load must not commit";
}

TEST(OooCore, MeltdownFlawForwardsData)
{
    // With the flaw, a dependent of a faulting load executes with the
    // real value and leaves a trace; without it, the value is zero.
    for (bool flaw : {true, false}) {
        ProgramBuilder b("meltdownflaw");
        b.segment(0x4000, {0x2}, MemPerm::kKernel);
        b.zeroSegment(0x8000, 4096);
        b.movi(1, 0x4000);
        b.load(2, 1, 0, 1);          // faults; forwards 2 iff flaw
        b.shli(3, 2, 9);
        b.movi(4, 0x8000);
        b.add(4, 4, 3);
        b.load(5, 4, 0, 1);          // touches 0x8400 iff flaw
        b.halt();
        auto handler = b.label();
        b.halt();
        b.faultHandlerAt(handler);
        SimConfig cfg;
        cfg.security.meltdownFlaw = flaw;
        auto core = runOoo(b.build(), cfg);
        EXPECT_EQ(core->hierarchy().l1d().probe(0x8000 + 0x400), flaw);
    }
}

TEST(OooCore, RdtscMonotonicAndSerialized)
{
    ProgramBuilder b("tsc");
    b.rdtsc(1);
    b.movi(5, 100);
    b.mul(6, 5, 5);
    b.rdtsc(2);
    b.sub(3, 2, 1);
    b.halt();
    auto core = runOoo(b.build());
    EXPECT_GT(core->archReg(2), core->archReg(1));
}

TEST(OooCore, FenceOrdersExecution)
{
    // Identical timing loads around a fence must be measured after it.
    ProgramBuilder b("fence");
    b.zeroSegment(0x1000, 64);
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.fence();
    b.rdtsc(2);
    b.load(3, 1, 0, 8);              // DRAM-latency load
    b.rdtsc(4);
    b.sub(5, 4, 2);
    b.halt();
    auto core = runOoo(b.build());
    EXPECT_GE(core->archReg(5), 140u)
        << "rdtsc must serialize: the miss latency is visible";
}

TEST(OooCore, WrMsrThenRdMsrInOrder)
{
    ProgramBuilder b("msr");
    b.movi(1, 77);
    b.wrmsr(0, 1);
    b.rdmsr(2, 0);
    b.halt();
    auto core = runOoo(b.build());
    EXPECT_EQ(core->archReg(2), 77u);
    EXPECT_EQ(core->msr(0), 77u);
}

TEST(OooCore, DeepCallChainWithRas)
{
    // Nested calls/returns deeper than fetch can see at once.
    ProgramBuilder b("nest");
    auto main_l = b.futureLabel();
    b.jmp(main_l);
    auto f3 = b.label();
    b.addi(2, 2, 1);
    b.ret(27);
    auto f2 = b.label();
    b.call(27, f3);
    b.addi(2, 2, 1);
    b.ret(29);
    auto f1 = b.label();
    b.call(29, f2);
    b.addi(2, 2, 1);
    b.ret(30);
    b.bind(main_l);
    b.movi(2, 0);
    b.movi(18, 0);
    b.movi(19, 50);
    auto loop = b.label();
    b.call(30, f1);
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
    b.halt();
    auto core = runOoo(b.build());
    EXPECT_EQ(core->archReg(2), 150u);
}

TEST(OooCore, MatchesInterpreterOnLoopKernel)
{
    ProgramBuilder b("kernel");
    b.zeroSegment(0x1000, 4096);
    b.movi(1, 0x1000);
    b.movi(2, 0);
    b.movi(18, 0);
    b.movi(19, 200);
    auto loop = b.label();
    b.andi(3, 18, 255);
    b.shli(3, 3, 3);
    b.add(4, 1, 3);
    b.store(4, 0, 18, 8);
    b.load(5, 4, 0, 8);
    b.add(2, 2, 5);
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
    b.halt();
    Program p = b.build();
    Interpreter ref(p);
    ref.run(1000000);
    auto core = runOoo(p);
    for (RegId r = 1; r < 20; ++r)
        EXPECT_EQ(core->archReg(r), ref.reg(r)) << "r" << int(r);
}

TEST(OooCore, CommittedInstCountMatchesInterpreter)
{
    ProgramBuilder b("count");
    b.movi(1, 0);
    b.movi(2, 37);
    auto loop = b.label();
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    Program p = b.build();
    Interpreter ref(p);
    ref.run(1000000);
    auto core = runOoo(p);
    EXPECT_EQ(core->committedInsts(), ref.instCount());
}

TEST(OooCore, IcacheMissStallsFetch)
{
    // A program long enough to span many i-cache lines still runs.
    ProgramBuilder b("long");
    for (int i = 0; i < 2000; ++i)
        b.addi(1, 1, 1);
    b.halt();
    auto core = runOoo(b.build());
    EXPECT_EQ(core->archReg(1), 2000u);
    EXPECT_GT(core->hierarchy().l1i().misses(), 50u);
}

TEST(OooCore, CpiBelowOneOnIlpKernel)
{
    ProgramBuilder b("ilp");
    for (RegId r = 1; r <= 8; ++r)
        b.movi(r, r);
    b.movi(18, 0);
    b.movi(19, 2000);
    auto loop = b.label();
    for (RegId r = 1; r <= 8; ++r)
        b.addi(r, r, 1);
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
    b.halt();
    auto core = runOoo(b.build(), {}, 2'000'000);
    EXPECT_LT(core->counters().cpi(), 1.0)
        << "8-wide OoO should exceed IPC 1 on independent chains";
}

TEST(OooCore, RobNeverExceedsCapacity)
{
    SimConfig cfg;
    cfg.core.robEntries = 16;
    cfg.core.numPhysRegs = 64;
    ProgramBuilder b("rob");
    b.zeroSegment(0x1000, 64);
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.load(2, 1, 0, 8); // long stall while younger insts pile up
    for (int i = 0; i < 100; ++i)
        b.addi(3, 3, 1);
    b.halt();
    OooCore core(b.build(), cfg);
    while (!core.halted() && core.cycle() < 100000) {
        core.tick();
        EXPECT_LE(core.rob().size(), 16u);
    }
    EXPECT_TRUE(core.halted());
    EXPECT_EQ(core.archReg(3), 100u);
}

} // namespace
} // namespace nda
