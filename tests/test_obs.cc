/**
 * @file
 * Tests of the observability layer: the stats registry and its JSON /
 * stats.txt dumpers, histogram merge/JSON, phase timers, the run
 * manifest, the waterfall renderer, and the Chrome/Konata trace
 * exporters (against golden files). All JSON emitted by the layer is
 * validated with a strict in-test parser — malformed output that a
 * lenient consumer would shrug off fails here.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "common/histogram.hh"
#include "core/perf_counters.hh"
#include "obs/run_manifest.hh"
#include "obs/scoped_timer.hh"
#include "obs/stats_registry.hh"
#include "obs/stats_schema.hh"
#include "obs/trace_export.hh"

namespace nda {
namespace {

// ---------------------------------------------------------------------
// A strict JSON parser: full grammar, no extensions, duplicate object
// keys rejected, no trailing input. Small enough to audit by eye.
// ---------------------------------------------------------------------

struct JsonValue {
    enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
    Type type = kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue &
    at(const std::string &key) const
    {
        static const JsonValue missing;
        const auto it = object.find(key);
        return it == object.end() ? missing : it->second;
    }
    bool has(const std::string &key) const { return object.count(key); }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string text) : s_(std::move(text)) {}

    bool
    parse(JsonValue &out)
    {
        ok_ = true;
        pos_ = 0;
        out = value();
        skipWs();
        return ok_ && pos_ == s_.size();
    }

    const std::string &error() const { return error_; }

  private:
    void
    fail(const std::string &why)
    {
        if (ok_) {
            ok_ = false;
            error_ = why + " at offset " + std::to_string(pos_);
        }
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        skipWs();
        if (pos_ >= s_.size()) {
            fail("unexpected end of input");
            return {};
        }
        const char c = s_[pos_];
        if (c == '{')
            return objectValue();
        if (c == '[')
            return arrayValue();
        if (c == '"')
            return stringValue();
        if (c == 't' || c == 'f')
            return boolValue();
        if (c == 'n')
            return nullValue();
        if (c == '-' || (c >= '0' && c <= '9'))
            return numberValue();
        fail("unexpected character");
        return {};
    }

    JsonValue
    objectValue()
    {
        JsonValue v;
        v.type = JsonValue::kObject;
        consume('{');
        if (consume('}'))
            return v;
        do {
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != '"') {
                fail("expected object key");
                return v;
            }
            const JsonValue key = stringValue();
            if (!consume(':')) {
                fail("expected ':'");
                return v;
            }
            if (v.object.count(key.string)) {
                fail("duplicate key '" + key.string + "'");
                return v;
            }
            v.object.emplace(key.string, value());
        } while (ok_ && consume(','));
        if (!consume('}'))
            fail("expected '}'");
        return v;
    }

    JsonValue
    arrayValue()
    {
        JsonValue v;
        v.type = JsonValue::kArray;
        consume('[');
        if (consume(']'))
            return v;
        do {
            v.array.push_back(value());
        } while (ok_ && consume(','));
        if (!consume(']'))
            fail("expected ']'");
        return v;
    }

    JsonValue
    stringValue()
    {
        JsonValue v;
        v.type = JsonValue::kString;
        ++pos_; // opening quote
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
                return v;
            }
            if (c != '\\') {
                v.string += c;
                continue;
            }
            if (pos_ >= s_.size()) {
                fail("dangling escape");
                return v;
            }
            const char e = s_[pos_++];
            switch (e) {
              case '"': v.string += '"'; break;
              case '\\': v.string += '\\'; break;
              case '/': v.string += '/'; break;
              case 'b': v.string += '\b'; break;
              case 'f': v.string += '\f'; break;
              case 'n': v.string += '\n'; break;
              case 'r': v.string += '\r'; break;
              case 't': v.string += '\t'; break;
              case 'u': {
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      if (pos_ >= s_.size() ||
                          !std::isxdigit(
                              static_cast<unsigned char>(s_[pos_]))) {
                          fail("bad \\u escape");
                          return v;
                      }
                      code = code * 16 +
                             (std::isdigit(static_cast<unsigned char>(
                                  s_[pos_]))
                                  ? s_[pos_] - '0'
                                  : (std::tolower(s_[pos_]) - 'a') + 10);
                      ++pos_;
                  }
                  // ASCII-only decode is enough for our emitters.
                  v.string += static_cast<char>(code & 0x7F);
                  break;
              }
              default: fail("unknown escape"); return v;
            }
        }
        if (pos_ >= s_.size()) {
            fail("unterminated string");
            return v;
        }
        ++pos_; // closing quote
        return v;
    }

    JsonValue
    numberValue()
    {
        JsonValue v;
        v.type = JsonValue::kNumber;
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        std::size_t int_digits = 0;
        while (pos_ < s_.size() && std::isdigit(
                   static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
            ++int_digits;
        }
        if (int_digits == 0) {
            fail("bad number");
            return v;
        }
        // JSON forbids leading zeros like "01".
        const std::size_t int_start =
            s_[start] == '-' ? start + 1 : start;
        if (int_digits > 1 && s_[int_start] == '0') {
            fail("leading zero");
            return v;
        }
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            std::size_t frac = 0;
            while (pos_ < s_.size() && std::isdigit(
                       static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
                ++frac;
            }
            if (frac == 0) {
                fail("bad fraction");
                return v;
            }
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            std::size_t exp = 0;
            while (pos_ < s_.size() && std::isdigit(
                       static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
                ++exp;
            }
            if (exp == 0) {
                fail("bad exponent");
                return v;
            }
        }
        v.number = std::stod(s_.substr(start, pos_ - start));
        return v;
    }

    JsonValue
    boolValue()
    {
        JsonValue v;
        v.type = JsonValue::kBool;
        if (s_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    JsonValue
    nullValue()
    {
        JsonValue v;
        if (s_.compare(pos_, 4, "null") == 0)
            pos_ += 4;
        else
            fail("bad literal");
        return v;
    }

    const std::string s_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
};

JsonValue
parseOrDie(const std::string &text)
{
    JsonParser p(text);
    JsonValue v;
    EXPECT_TRUE(p.parse(v))
        << p.error() << "\ninput was:\n"
        << text.substr(0, 2000);
    return v;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
goldenPath(const char *name)
{
    return std::string(NDASIM_GOLDEN_DIR) + "/" + name;
}

// Three hand-built records covering the interesting shapes: an
// NDA-deferred unsafe load, a dependent ALU op, and a squashed
// mispredicted branch. The exporters are pure functions of these, so
// the golden files below never move when simulator timing changes.
std::vector<InstTraceRecord>
syntheticRecords()
{
    InstTraceRecord a;
    a.seq = 1;
    a.pc = 0x40;
    a.disasm = "ld r1, [r2+0] (8)";
    a.fetched = 10;
    a.dispatched = 12;
    a.issued = 14;
    a.completed = 30;
    a.broadcasted = 38;
    a.retired = 40;
    a.wasUnsafe = true;
    a.unsafeMarkedAt = 12;
    a.unsafeClearedAt = 38;

    InstTraceRecord b;
    b.seq = 2;
    b.pc = 0x44;
    b.disasm = "addi r3, r1, 1";
    b.fetched = 11;
    b.dispatched = 13;
    b.issued = 39;
    b.completed = 40;
    b.broadcasted = 40;
    b.retired = 41;

    InstTraceRecord c;
    c.seq = 3;
    c.pc = 0x48;
    c.disasm = "bne r3, r4, +2";
    c.fetched = 11;
    c.dispatched = 13;
    c.issued = 15;
    c.completed = 16;
    c.broadcasted = 16;
    c.retired = 42;
    c.squashed = true;
    c.mispredicted = true;
    c.squashCause = SquashCause::kBranchMispredict;

    return {a, b, c};
}

// ---------------------------------------------------------------------
// The parser itself must be strict, or the tests above prove nothing.
// ---------------------------------------------------------------------

TEST(StrictJson, AcceptsValidDocuments)
{
    for (const char *doc :
         {"{}", "[]", "[1, 2.5, -3e2, \"x\", true, null]",
          R"({"a": {"b": [0.5]}, "c": "\n\t\" A"})"}) {
        JsonParser p(doc);
        JsonValue v;
        EXPECT_TRUE(p.parse(v)) << doc << ": " << p.error();
    }
}

TEST(StrictJson, RejectsMalformedDocuments)
{
    for (const char *doc :
         {"{", "{} extra", "[1,]", "{\"a\":1,\"a\":2}", "01",
          "{\"a\"}", "\"unterminated", "[1 2]", "nul", "1.",
          "\"bad\\q\""}) {
        JsonParser p(doc);
        JsonValue v;
        EXPECT_FALSE(p.parse(v)) << "accepted: " << doc;
    }
}

// ---------------------------------------------------------------------
// StatsRegistry
// ---------------------------------------------------------------------

TEST(StatsRegistry, BindsAndDumpsAllThreeKinds)
{
    std::uint64_t hits = 7;
    Histogram lat(16);
    lat.add(3);
    lat.add(5);

    StatsRegistry reg;
    reg.addCounter("core.l1.hits", &hits, "lookups that hit");
    reg.addFormula(
        "core.l1.miss_rate", [] { return 0.25; }, "misses/lookups");
    reg.addHistogram("core.lat", &lat, "load latency");

    // Pointer binding: a later mutation is visible at dump time.
    hits = 9;
    const JsonValue v = parseOrDie(reg.dumpJson());
    EXPECT_EQ(v.at("core").at("l1").at("hits").number, 9.0);
    EXPECT_EQ(v.at("core").at("l1").at("miss_rate").number, 0.25);
    EXPECT_EQ(v.at("core").at("lat").at("count").number, 2.0);

    const std::string txt = reg.dumpText();
    EXPECT_NE(txt.find("core.l1.hits"), std::string::npos);
    EXPECT_NE(txt.find("core.lat::p99"), std::string::npos);
    EXPECT_NE(txt.find("# lookups that hit"), std::string::npos);
}

TEST(StatsRegistry, GroupViewNestsPrefixes)
{
    std::uint64_t n = 1;
    StatsRegistry reg;
    const StatsRegistry::Group g = reg.group("a").group("b");
    g.counter("n", &n, "nested");
    ASSERT_EQ(reg.names().size(), 1u);
    EXPECT_EQ(reg.names()[0], "a.b.n");
}

TEST(StatsRegistry, NamesAreSortedUnique)
{
    std::uint64_t x = 0;
    StatsRegistry reg;
    reg.addCounter("b.two", &x, "");
    reg.addCounter("a.one", &x, "");
    const auto names = reg.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a.one");
    EXPECT_EQ(names[1], "b.two");
}

// ---------------------------------------------------------------------
// Histogram merge / JSON (stats-registry leaf format)
// ---------------------------------------------------------------------

TEST(Histogram, MergeFoldsCountsAndOverflow)
{
    Histogram a(8), b(8);
    a.add(1);
    a.add(2);
    b.add(2);
    b.add(100); // overflow of b
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.buckets()[2], 2u);
    EXPECT_EQ(a.buckets().back(), 1u);
}

TEST(Histogram, MergeRespectsNarrowerCap)
{
    Histogram narrow(4), wide(64);
    wide.add(10); // in range for wide, overflow for narrow
    narrow.merge(wide);
    EXPECT_EQ(narrow.count(), 1u);
    EXPECT_EQ(narrow.buckets().back(), 1u);
}

TEST(Histogram, ToJsonParsesWithPercentiles)
{
    Histogram h(32);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<std::uint64_t>(i % 10));
    const JsonValue v = parseOrDie(h.toJson());
    EXPECT_EQ(v.at("count").number, 100.0);
    EXPECT_TRUE(v.has("mean"));
    EXPECT_TRUE(v.has("p50"));
    EXPECT_TRUE(v.has("p95"));
    EXPECT_TRUE(v.has("p99"));
    EXPECT_EQ(v.at("overflow").number, 0.0);
    EXPECT_EQ(v.at("buckets").at("0").number, 10.0);
}

TEST(Histogram, ToJsonExposesOverflowCount)
{
    Histogram h(4);
    h.add(2);
    h.add(99);
    h.add(100);
    const JsonValue v = parseOrDie(h.toJson());
    EXPECT_EQ(v.at("overflow").number, 2.0);
}

TEST(StatsRegistry, DumpTextEmitsHistogramOverflowRow)
{
    Histogram h(4);
    h.add(1);
    h.add(500);
    StatsRegistry reg;
    reg.addHistogram("core.lat", &h, "latency");
    const std::string text = reg.dumpText();
    EXPECT_NE(text.find("core.lat::overflow"), std::string::npos);
    EXPECT_NE(text.find("core.lat::p99"), std::string::npos);
}

// ---------------------------------------------------------------------
// ScopedTimer / PhaseTimings
// ---------------------------------------------------------------------

TEST(ScopedTimer, RecordsAndAccumulatesPhases)
{
    PhaseTimings t;
    {
        ScopedTimer a(t, "alpha");
    }
    {
        ScopedTimer b(t, "beta");
        b.stop();
        b.stop(); // idempotent
    }
    {
        ScopedTimer a2(t, "alpha"); // accumulates into "alpha"
    }
    ASSERT_EQ(t.phases().size(), 2u);
    EXPECT_EQ(t.phases()[0].first, "alpha");
    EXPECT_EQ(t.phases()[1].first, "beta");
    EXPECT_GE(t.total(), 0.0);
}

TEST(ScopedTimer, StopFreezesTheRecordedValue)
{
    PhaseTimings t;
    ScopedTimer a(t, "phase");
    a.stop();
    ASSERT_EQ(t.phases().size(), 1u);
    const double first = t.phases()[0].second;
    // Further stops (and the destructor) must not accumulate more
    // time into the already-recorded phase.
    a.stop();
    EXPECT_EQ(t.phases().size(), 1u);
    EXPECT_DOUBLE_EQ(t.phases()[0].second, first);
}

TEST(PhaseTimings, TotalSumsPhasesInInsertionOrder)
{
    PhaseTimings t;
    t.record("fast_forward", 1.5);
    t.record("detailed", 2.25);
    t.record("fast_forward", 0.5); // accumulates, keeps position
    ASSERT_EQ(t.phases().size(), 2u);
    EXPECT_EQ(t.phases()[0].first, "fast_forward");
    EXPECT_DOUBLE_EQ(t.phases()[0].second, 2.0);
    EXPECT_DOUBLE_EQ(t.total(), 4.25);
}

TEST(ScopedTimer, ElapsedTimeIsNonNegativeAndOrdered)
{
    PhaseTimings t;
    {
        ScopedTimer outer(t, "outer");
        { ScopedTimer inner(t, "inner"); }
    }
    ASSERT_EQ(t.phases().size(), 2u);
    // "inner" was recorded first (destructor order), both >= 0, and
    // the enclosing scope can never be shorter than the nested one.
    EXPECT_EQ(t.phases()[0].first, "inner");
    EXPECT_GE(t.phases()[0].second, 0.0);
    EXPECT_GE(t.phases()[1].second, t.phases()[0].second);
}

// ---------------------------------------------------------------------
// RunManifest
// ---------------------------------------------------------------------

TEST(RunManifest, SetRawSplicesStructuredFields)
{
    RunManifest m("unit_test");
    m.set("scalar", std::uint64_t{7});
    m.setRaw("hotspots",
             "[{\"pc\": \"0x2a\", \"lost_slots\": 3}]");
    m.setRaw("scalar", "{\"replaced\": true}"); // last write wins

    const JsonValue v = parseOrDie(m.toJson());
    const JsonValue &fields = v.at("fields");
    ASSERT_EQ(fields.at("hotspots").type, JsonValue::kArray);
    EXPECT_EQ(fields.at("hotspots").array[0].at("lost_slots").number,
              3.0);
    EXPECT_EQ(fields.at("scalar").at("replaced").boolean, true);
}

TEST(RunManifest, JsonParsesWithFieldsTimingsAndStats)
{
    std::uint64_t commits = 123;
    StatsRegistry reg;
    reg.addCounter("core.commits", &commits, "committed insts");

    PhaseTimings timings;
    { ScopedTimer t(timings, "grid"); }

    RunManifest m("unit_test");
    m.set("profile", "Strict");
    m.set("seed", std::uint64_t{42});
    m.set("cpi", 1.5);
    m.set("blocked", true);
    m.set("profile", "Strict+BR"); // last write wins, no dup key
    m.setTimings(&timings);
    m.setStats(&reg);

    const JsonValue v = parseOrDie(m.toJson());
    EXPECT_EQ(v.at("tool").string, "ndasim");
    EXPECT_EQ(v.at("bench").string, "unit_test");
    EXPECT_EQ(v.at("manifest_version").number, 1.0);
    EXPECT_FALSE(v.at("git").string.empty());
    EXPECT_EQ(v.at("fields").at("profile").string, "Strict+BR");
    EXPECT_EQ(v.at("fields").at("seed").number, 42.0);
    EXPECT_EQ(v.at("fields").at("cpi").number, 1.5);
    EXPECT_TRUE(v.at("fields").at("blocked").boolean);
    EXPECT_TRUE(v.at("timings_sec").has("grid"));
    EXPECT_TRUE(v.at("timings_sec").has("total"));
    EXPECT_EQ(v.at("stats").at("core").at("commits").number, 123.0);
}

TEST(RunManifest, WriteFileRoundTrips)
{
    RunManifest m("roundtrip");
    m.set("x", std::uint64_t{1});
    const std::string path =
        ::testing::TempDir() + "/ndasim_manifest_test.json";
    ASSERT_TRUE(m.writeFile(path));
    // writeFile terminates the document with a newline.
    EXPECT_EQ(readFile(path), m.toJson() + "\n");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Waterfall renderer (shared by PipeTrace::render and kText export)
// ---------------------------------------------------------------------

TEST(Waterfall, SelectsRequestedRows)
{
    const auto recs = syntheticRecords();
    const std::string all = renderWaterfall(recs, 0, recs.size(), 32);
    EXPECT_NE(all.find("ld r1"), std::string::npos);
    EXPECT_NE(all.find("addi r3"), std::string::npos);
    EXPECT_NE(all.find("bne r3"), std::string::npos);

    const std::string one = renderWaterfall(recs, 1, 1, 32);
    EXPECT_EQ(one.find("ld r1"), std::string::npos);
    EXPECT_NE(one.find("addi r3"), std::string::npos);
    EXPECT_EQ(one.find("bne r3"), std::string::npos);
}

TEST(Waterfall, CompressesTimeAxisToWidth)
{
    auto recs = syntheticRecords();
    recs[2].retired = 100000; // huge cycle range
    for (unsigned width : {8u, 24u, 64u}) {
        const std::string out =
            renderWaterfall(recs, 0, recs.size(), width);
        std::istringstream lines(out);
        std::string line;
        std::getline(lines, line); // header
        while (std::getline(lines, line)) {
            // seq(6) + space + disasm(26) + space + lane(width) +
            // optional flags.
            EXPECT_LE(line.size(), 6 + 1 + 26 + 1 + width + 12)
                << "width " << width << ": " << line;
            EXPECT_NE(line.find_first_of("fdicbrx="), std::string::npos);
        }
    }
}

TEST(Waterfall, MarksSquashUnsafeAndMispredict)
{
    const auto recs = syntheticRecords();
    std::istringstream lines(
        renderWaterfall(recs, 0, recs.size(), 48));
    std::string header, row_a, row_b, row_c;
    std::getline(lines, header);
    std::getline(lines, row_a);
    std::getline(lines, row_b);
    std::getline(lines, row_c);
    EXPECT_NE(header.find("x=squash"), std::string::npos);
    // Unsafe load: retires with 'r', flagged U, no squash marker.
    EXPECT_NE(row_a.find('r'), std::string::npos);
    EXPECT_NE(row_a.find("  U"), std::string::npos);
    EXPECT_EQ(row_a.find('x'), std::string::npos);
    // Squashed branch: 'x' marker, MISP flag, no retire marker.
    EXPECT_NE(row_c.find('x'), std::string::npos);
    EXPECT_NE(row_c.find("MISP"), std::string::npos);
    EXPECT_EQ(row_b.find('x'), std::string::npos);
}

TEST(Waterfall, DegenerateInputs)
{
    EXPECT_EQ(renderWaterfall({}, 0, 10, 32), "(no trace records)\n");
    const auto recs = syntheticRecords();
    EXPECT_EQ(renderWaterfall(recs, recs.size(), 1, 32),
              "(no trace records)\n");
    EXPECT_EQ(renderWaterfall(recs, 0, 1, 1), "(no trace records)\n");
}

// ---------------------------------------------------------------------
// Chrome trace exporter
// ---------------------------------------------------------------------

TEST(ChromeExport, MatchesGoldenFile)
{
    const TraceExporter exp(syntheticRecords());
    EXPECT_EQ(exp.exportChrome(),
              readFile(goldenPath("chrome_trace.json")));
}

TEST(ChromeExport, StrictJsonWithNdaSemantics)
{
    const TraceExporter exp(syntheticRecords());
    const JsonValue v = parseOrDie(exp.exportChrome());
    ASSERT_EQ(v.at("traceEvents").type, JsonValue::kArray);

    std::size_t defer = 0, squash = 0, marks = 0;
    bool process_meta = false;
    for (const JsonValue &e : v.at("traceEvents").array) {
        const std::string &name = e.at("name").string;
        if (name == "process_name")
            process_meta = true;
        if (name == "nda_defer") {
            ++defer;
            EXPECT_EQ(e.at("ph").string, "X");
            EXPECT_EQ(e.at("ts").number, 30.0);  // completed
            EXPECT_EQ(e.at("dur").number, 8.0);  // broadcast gap
            EXPECT_EQ(e.at("tid").number, 1.0);  // the unsafe load
        }
        if (name == "squash") {
            ++squash;
            EXPECT_EQ(e.at("ph").string, "i");
            EXPECT_EQ(e.at("args").at("detail").string,
                      "branch-mispredict");
            EXPECT_EQ(e.at("tid").number, 3.0);
        }
        if (name == "unsafe-mark" || name == "unsafe-clear")
            ++marks;
    }
    EXPECT_TRUE(process_meta);
    EXPECT_EQ(defer, 1u) << "only the deferred load gets a defer slice";
    EXPECT_EQ(squash, 1u);
    EXPECT_EQ(marks, 2u);
}

TEST(ChromeExport, EmptyRecordsStillValid)
{
    const TraceExporter exp({});
    const JsonValue v = parseOrDie(exp.exportChrome());
    // Only the process-name metadata event remains.
    ASSERT_EQ(v.at("traceEvents").array.size(), 1u);
    EXPECT_EQ(v.at("traceEvents").array[0].at("name").string,
              "process_name");
}

// ---------------------------------------------------------------------
// Konata exporter
// ---------------------------------------------------------------------

TEST(KonataExport, MatchesGoldenFile)
{
    const TraceExporter exp(syntheticRecords());
    EXPECT_EQ(exp.exportKonata(),
              readFile(goldenPath("konata_trace.kanata")));
}

TEST(KonataExport, HeaderClockAndRetireProtocol)
{
    const TraceExporter exp(syntheticRecords());
    const std::string out = exp.exportKonata();
    ASSERT_EQ(out.rfind("Kanata\t0004\nC=\t10\n", 0), 0u)
        << "header + clock origin at the first fetch cycle";

    // Retire commands: ids 0/1 for the two commits, flush type (1)
    // for the squashed branch with a don't-care id of 0.
    EXPECT_NE(out.find("R\t0\t0\t0"), std::string::npos);
    EXPECT_NE(out.find("R\t1\t1\t0"), std::string::npos);
    EXPECT_NE(out.find("R\t2\t0\t1"), std::string::npos);
    // The unsafe load carries an extra lane-1 label.
    EXPECT_NE(out.find("L\t0\t1\tNDA-unsafe"), std::string::npos);

    // Time must advance monotonically: "C" deltas are positive.
    std::istringstream lines(out);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind("C\t", 0) == 0) {
            EXPECT_GT(std::stoull(line.substr(2)), 0u);
        }
    }
}

TEST(KonataExport, EmptyRecords)
{
    const TraceExporter exp({});
    EXPECT_EQ(exp.exportKonata(), "Kanata\t0004\n");
}

TEST(TextExport, MatchesWaterfall)
{
    const auto recs = syntheticRecords();
    const TraceExporter exp(recs);
    EXPECT_EQ(exp.exportText(96),
              renderWaterfall(recs, 0, recs.size(), 96));
    EXPECT_EQ(exp.render(TraceFormat::kText), exp.exportText());
}

TEST(TraceFormat, NameParseRoundTrip)
{
    for (TraceFormat f : {TraceFormat::kChrome, TraceFormat::kKonata,
                          TraceFormat::kText}) {
        TraceFormat parsed{};
        ASSERT_TRUE(parseTraceFormat(traceFormatName(f), parsed));
        EXPECT_EQ(parsed, f);
    }
    TraceFormat dummy{};
    EXPECT_FALSE(parseTraceFormat("perfetto", dummy));
    EXPECT_FALSE(parseTraceFormat("", dummy));
}

// ---------------------------------------------------------------------
// Canonical stats schema vs the committed golden
// ---------------------------------------------------------------------

TEST(StatsSchema, MatchesGoldenFile)
{
    std::vector<std::string> golden;
    std::istringstream in(readFile(goldenPath("stats_schema.txt")));
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            golden.push_back(line);
    }
    const std::vector<std::string> actual = canonicalStatsSchema();
    EXPECT_EQ(actual, golden)
        << "registered stat names changed; if intentional, regenerate "
           "with: sim_throughput --stats-schema > "
           "tests/golden/stats_schema.txt";
}

} // namespace
} // namespace nda
