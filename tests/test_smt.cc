/**
 * @file
 * SMT-specific behavioural tests of the OoO core: two hardware
 * contexts running distinct (or homogeneous) instruction streams,
 * per-thread architectural state and counters, per-thread NDA policy
 * split (the co-residency threat model's asymmetric case), the
 * per-thread issue-queue partition, stats namespacing (t0./t1.), and
 * checkpoint save/restore with extra thread contexts.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/issue_queue.hh"
#include "core/ooo_core.hh"
#include "core/snapshot.hh"
#include "isa/program.hh"
#include "obs/stats_registry.hh"

namespace nda {
namespace {

/**
 * Heterogeneous two-thread program: thread 0 sums 1..100 into r1 and
 * stores it at 0x1000; thread 1 (smtEntry) computes 2^20 by doubling
 * and stores it at 0x1008. Memory is shared, the stores are disjoint.
 */
Program
twoThreadProgram()
{
    ProgramBuilder b("smt-hetero");
    b.zeroSegment(0x1000, 64);
    b.movi(1, 0);
    b.movi(2, 0);
    auto sum_loop = b.label();
    b.addi(2, 2, 1);
    b.add(1, 1, 2);
    b.movi(3, 100);
    b.blt(2, 3, sum_loop);
    b.movi(4, 0x1000);
    b.store(4, 0, 1, 8);
    b.halt();

    const Addr t1_entry = b.here();
    b.movi(1, 1);
    b.movi(2, 0);
    auto dbl_loop = b.label();
    b.add(1, 1, 1);
    b.addi(2, 2, 1);
    b.movi(3, 20);
    b.blt(2, 3, dbl_loop);
    b.movi(4, 0x1008);
    b.store(4, 0, 1, 8);
    b.halt();

    Program p = b.build();
    p.smtEntry = t1_entry;
    return p;
}

SimConfig
smtConfig(unsigned threads)
{
    SimConfig cfg;
    cfg.core.smtThreads = threads;
    return cfg;
}

TEST(SmtCore, TwoThreadsRunDistinctStreams)
{
    OooCore core(twoThreadProgram(), smtConfig(2));
    core.run(~std::uint64_t{0}, 200'000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.numThreads(), 2u);
    EXPECT_TRUE(core.threadHalted(0));
    EXPECT_TRUE(core.threadHalted(1));

    EXPECT_EQ(core.archRegOf(0, 1), 5050u);
    EXPECT_EQ(core.archRegOf(1, 1), 1u << 20);
    // archReg() is thread 0's view.
    EXPECT_EQ(core.archReg(1), core.archRegOf(0, 1));
    // Both stores reached the shared memory.
    EXPECT_EQ(core.mem().read(0x1000, 8), 5050u);
    EXPECT_EQ(core.mem().read(0x1008, 8), 1u << 20);
}

TEST(SmtCore, PerThreadCountersPartitionThePooledCounts)
{
    OooCore core(twoThreadProgram(), smtConfig(2));
    core.run(~std::uint64_t{0}, 200'000);
    ASSERT_TRUE(core.halted());

    const PerfCounters *c0 = core.threadCounters(0);
    const PerfCounters *c1 = core.threadCounters(1);
    ASSERT_NE(c0, nullptr);
    ASSERT_NE(c1, nullptr);
    EXPECT_GT(c0->committedInsts, 0u);
    EXPECT_GT(c1->committedInsts, 0u);
    EXPECT_EQ(c0->committedInsts + c1->committedInsts,
              core.counters().committedInsts);
    EXPECT_EQ(c0->stores + c1->stores, core.counters().stores);
    EXPECT_EQ(c0->condBranches + c1->condBranches,
              core.counters().condBranches);
    // The sum loop runs 5x the iterations of the doubling loop.
    EXPECT_GT(c0->committedInsts, c1->committedInsts);
}

TEST(SmtCore, HomogeneousCoRunWhenNoSmtEntry)
{
    // Without smtEntry both threads execute the same stream from
    // `entry`; each context must reach the same architectural result.
    Program p = twoThreadProgram();
    p.smtEntry = ~Addr{0};
    OooCore core(p, smtConfig(2));
    core.run(~std::uint64_t{0}, 200'000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.archRegOf(0, 1), 5050u);
    EXPECT_EQ(core.archRegOf(1, 1), 5050u);
}

TEST(SmtCore, SingleThreadCoreHasNoPerThreadView)
{
    OooCore core(twoThreadProgram(), smtConfig(1));
    core.run(~std::uint64_t{0}, 200'000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.numThreads(), 1u);
    // smtEntry is ignored: only thread 0's stream ran.
    EXPECT_EQ(core.archReg(1), 5050u);
    EXPECT_EQ(core.mem().read(0x1008, 8), 0u);
    // The pooled counters ARE the thread counters at smt=1.
    EXPECT_EQ(core.threadCounters(0), nullptr);

    StatsRegistry reg;
    core.registerStats(reg, "core");
    for (const std::string &n : reg.names())
        EXPECT_EQ(n.find(".t0."), std::string::npos)
            << "smt=1 must not emit per-thread stats: " << n;
}

TEST(SmtCore, PerThreadStatsAreNamespaced)
{
    OooCore core(twoThreadProgram(), smtConfig(2));
    core.run(~std::uint64_t{0}, 200'000);

    StatsRegistry reg;
    core.registerStats(reg, "core");
    bool has_t0 = false;
    bool has_t1 = false;
    for (const std::string &n : reg.names()) {
        has_t0 = has_t0 || n.rfind("core.t0.perf.", 0) == 0;
        has_t1 = has_t1 || n.rfind("core.t1.perf.", 0) == 0;
    }
    EXPECT_TRUE(has_t0);
    EXPECT_TRUE(has_t1);
}

TEST(SmtCore, FetchPoliciesAgreeArchitecturally)
{
    // Round-robin vs ICOUNT arbitration is timing-only; both must
    // complete with identical architectural results.
    for (const SmtFetchPolicy pol :
         {SmtFetchPolicy::kRoundRobin, SmtFetchPolicy::kIcount}) {
        SimConfig cfg = smtConfig(2);
        cfg.core.smtFetchPolicy = pol;
        OooCore core(twoThreadProgram(), cfg);
        core.run(~std::uint64_t{0}, 200'000);
        ASSERT_TRUE(core.halted());
        EXPECT_EQ(core.archRegOf(0, 1), 5050u);
        EXPECT_EQ(core.archRegOf(1, 1), 1u << 20);
    }
}

TEST(SmtCore, PerThreadNdaPolicySplit)
{
    // The co-residency threat model: a strict-NDA victim on thread 0
    // sharing the core with an unprotected thread 1 running the SAME
    // code. Only the protected thread's instructions may be marked
    // unsafe; the policy is timing-only so both results agree.
    Program p = twoThreadProgram();
    p.smtEntry = ~Addr{0}; // homogeneous: identical streams
    SimConfig cfg = smtConfig(2);
    cfg.security.propagation = NdaPolicy::kStrict;
    cfg.perThreadSecurity = true;
    cfg.security1 = SecurityConfig{};

    OooCore core(p, cfg);
    core.run(~std::uint64_t{0}, 400'000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.archRegOf(0, 1), 5050u);
    EXPECT_EQ(core.archRegOf(1, 1), 5050u);

    const PerfCounters *c0 = core.threadCounters(0);
    const PerfCounters *c1 = core.threadCounters(1);
    ASSERT_NE(c0, nullptr);
    ASSERT_NE(c1, nullptr);
    EXPECT_GT(c0->unsafeMarked, 0u)
        << "strict NDA on thread 0 must mark unsafe instructions";
    EXPECT_EQ(c1->unsafeMarked, 0u)
        << "the unprotected thread must never be marked unsafe";
    EXPECT_EQ(c1->deferredBroadcasts, 0u);
}

TEST(SmtCore, IssueQueuePartitionTracksPerThreadOccupancy)
{
    DynInstPool pool;
    PhysRegFile regs(16);
    IssueQueue iq(8);

    auto make = [&pool](unsigned tid) {
        DynInstPtr inst = pool.create();
        inst->tid = tid;
        return inst;
    };

    std::vector<DynInstPtr> held;
    held.push_back(make(0));
    held.push_back(make(0));
    held.push_back(make(1));
    for (const DynInstPtr &i : held)
        iq.insert(i);
    EXPECT_EQ(iq.occupancyOf(0), 2u);
    EXPECT_EQ(iq.occupancyOf(1), 1u);
    EXPECT_EQ(iq.occupancyOf(7), 0u); // never-seen tid

    // A squash releases only the squashed thread's share.
    held[0]->squashed = true;
    iq.removeSquashed();
    EXPECT_EQ(iq.occupancyOf(0), 1u);
    EXPECT_EQ(iq.occupancyOf(1), 1u);

    // Issue releases the issuing instruction's thread.
    iq.selectReady(regs, [](const DynInstPtr &inst) {
        return inst->tid == 1; // issue thread 1's entry only
    });
    EXPECT_EQ(iq.occupancyOf(0), 1u);
    EXPECT_EQ(iq.occupancyOf(1), 0u);

    iq.clear();
    EXPECT_EQ(iq.occupancyOf(0), 0u);
}

TEST(SmtCore, CheckpointRoundTripCarriesExtraThreads)
{
    // Stop an smt=2 run midway, snapshot, restore into a fresh core,
    // and finish: both threads must land on the same architectural
    // results as an uninterrupted run.
    const Program p = twoThreadProgram();
    OooCore first(p, smtConfig(2));
    first.run(300, ~Cycle{0});
    ASSERT_FALSE(first.halted());

    SimSnapshot snap;
    first.saveCheckpoint(snap);
    ASSERT_EQ(snap.extraThreads.size(), 1u);
    // Thread 1's memory image lives in the shared arch.mem only.
    EXPECT_EQ(snap.extraThreads[0].mem.pageCount(), 0u);

    OooCore resumed(p, smtConfig(2));
    resumed.restoreCheckpoint(snap);
    resumed.run(~std::uint64_t{0}, 200'000);
    ASSERT_TRUE(resumed.halted());
    EXPECT_EQ(resumed.archRegOf(0, 1), 5050u);
    EXPECT_EQ(resumed.archRegOf(1, 1), 1u << 20);
    EXPECT_EQ(resumed.mem().read(0x1000, 8), 5050u);
    EXPECT_EQ(resumed.mem().read(0x1008, 8), 1u << 20);
}

TEST(SmtCore, SingleThreadSnapshotSeedsThreadZeroOfSmtCore)
{
    // Backward compatibility: an smt=1 checkpoint (no extraThreads)
    // restores into an smt=2 core, seeding thread 0; thread 1 starts
    // fresh at the program's smtEntry.
    const Program p = twoThreadProgram();
    OooCore single(p, smtConfig(1));
    single.run(200, ~Cycle{0});
    ASSERT_FALSE(single.halted());

    SimSnapshot snap;
    single.saveCheckpoint(snap);
    ASSERT_TRUE(snap.extraThreads.empty());

    OooCore wide(p, smtConfig(2));
    wide.restoreCheckpoint(snap);
    wide.run(~std::uint64_t{0}, 200'000);
    ASSERT_TRUE(wide.halted());
    EXPECT_EQ(wide.archRegOf(0, 1), 5050u);
    EXPECT_EQ(wide.archRegOf(1, 1), 1u << 20);
}

} // namespace
} // namespace nda
