/**
 * @file
 * Tests of the parallel experiment harness: the thread pool's edge
 * cases, and the determinism contract — for a fixed seed, the sampled
 * runner and the grid sweep must produce bit-identical WindowStats
 * regardless of --jobs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hh"
#include "harness/profiles.hh"
#include "harness/runner.hh"
#include "workloads/workload.hh"

namespace nda {
namespace {

// --------------------------------------------------------------------------
// ThreadPool
// --------------------------------------------------------------------------

TEST(ThreadPool, ZeroTasksIsANoop)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SingleLaneRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.concurrency(), 1u);
    const auto caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    pool.parallelFor(5, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, MoreTasksThanWorkers)
{
    ThreadPool pool(3);
    constexpr std::size_t kTasks = 100;
    std::vector<std::atomic<int>> hits(kTasks);
    pool.parallelFor(kTasks, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(4);
    for (int round = 0; round < 10; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(17, [&](std::size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 17u * 16u / 2u);
    }
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(50,
                         [&](std::size_t i) {
                             if (i == 7)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool must still be usable after a failed batch.
    std::atomic<int> ok{0};
    pool.parallelFor(8, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, ExceptionOnSerialPathToo)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(
                     3, [](std::size_t) { throw std::logic_error("x"); }),
                 std::logic_error);
}

// --------------------------------------------------------------------------
// Determinism: jobs=1 vs jobs=N
// --------------------------------------------------------------------------

void
expectIdentical(const WindowStats &a, const WindowStats &b)
{
    // Exact equality on doubles is intentional: the contract is
    // bit-identical output, not merely close.
    EXPECT_EQ(a.cpi, b.cpi);
    EXPECT_EQ(a.mlp, b.mlp);
    EXPECT_EQ(a.ilp, b.ilp);
    EXPECT_EQ(a.dispatchToIssue, b.dispatchToIssue);
    EXPECT_EQ(a.commitFrac, b.commitFrac);
    EXPECT_EQ(a.memStallFrac, b.memStallFrac);
    EXPECT_EQ(a.backendStallFrac, b.backendStallFrac);
    EXPECT_EQ(a.frontendStallFrac, b.frontendStallFrac);
    EXPECT_EQ(a.condMispredictRate, b.condMispredictRate);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    expectIdentical(a.mean, b.mean);
    EXPECT_EQ(a.cpiCi95, b.cpiCi95);
    EXPECT_EQ(a.cpiSamples, b.cpiSamples);
}

SampleParams
quickParams(unsigned jobs)
{
    SampleParams sp;
    sp.warmupInsts = 3'000;
    sp.measureInsts = 6'000;
    sp.samples = 4;
    sp.baseSeed = 11;
    sp.jobs = jobs;
    return sp;
}

TEST(ParallelRunner, SampledMatchesSerialForEveryCell)
{
    const std::vector<std::string> names{"compute", "branchy",
                                         "ptrchase"};
    const std::vector<Profile> profiles{Profile::kOoo,
                                        Profile::kFullProtection,
                                        Profile::kInOrder};
    for (const std::string &n : names) {
        const auto w = makeWorkload(n);
        ASSERT_NE(w, nullptr);
        for (Profile p : profiles) {
            const SimConfig cfg = makeProfile(p);
            const RunResult serial =
                runSampled(*w, cfg, quickParams(1));
            const RunResult parallel =
                runSampled(*w, cfg, quickParams(8));
            expectIdentical(serial, parallel);
        }
    }
}

TEST(ParallelRunner, GridMatchesSampledCells)
{
    std::vector<std::unique_ptr<Workload>> ws;
    ws.push_back(makeWorkload("crc"));
    ws.push_back(makeWorkload("stream"));
    const std::vector<SimConfig> configs{
        makeProfile(Profile::kOoo),
        makeProfile(Profile::kPermissiveBr)};

    const std::vector<RunResult> grid =
        runGrid(ws, configs, quickParams(8));
    ASSERT_EQ(grid.size(), ws.size() * configs.size());
    for (std::size_t w = 0; w < ws.size(); ++w) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const RunResult cell =
                runSampled(*ws[w], configs[c], quickParams(1));
            expectIdentical(grid[w * configs.size() + c], cell);
        }
    }
}

TEST(ParallelRunner, GridProgressCoversEveryWindow)
{
    std::vector<std::unique_ptr<Workload>> ws;
    ws.push_back(makeWorkload("compute"));
    const std::vector<SimConfig> configs{makeProfile(Profile::kOoo)};
    SampleParams sp = quickParams(4);
    std::size_t calls = 0;
    std::size_t last_done = 0;
    runGrid(ws, configs, sp, [&](std::size_t done, std::size_t total) {
        ++calls;
        EXPECT_EQ(total, sp.samples);
        EXPECT_EQ(done, last_done + 1); // serialized, monotonic
        last_done = done;
    });
    EXPECT_EQ(calls, sp.samples);
}

} // namespace
} // namespace nda
