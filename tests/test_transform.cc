/**
 * @file
 * Tests of the fence-insertion pass (the paper §3.2 software
 * mitigation baseline): architectural transparency, target remapping,
 * the security effect (Spectre v1 blocked on insecure hardware), and
 * the heavy performance cost the paper cites for such approaches.
 */

#include <gtest/gtest.h>

#include "core/core_factory.hh"
#include "core/ooo_core.hh"
#include "harness/profiles.hh"
#include "harness/runner.hh"
#include "isa/interpreter.hh"
#include "isa/random_program.hh"
#include "isa/transform.hh"
#include "workloads/workload.hh"

namespace nda {
namespace {

TEST(FencePass, InsertsFencesAndPatchesBranches)
{
    ProgramBuilder b("t");
    b.movi(1, 0);
    b.movi(2, 3);
    auto loop = b.label();
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    TransformStats stats;
    const Program out = insertFencesAfterBranches(b.build(), &stats);
    // One fence at the taken target, one after the branch.
    EXPECT_EQ(stats.fencesInserted, 2u);
    EXPECT_GE(stats.branchesPatched, 1u);
    int fences = 0;
    for (const MicroOp &u : out.code)
        fences += u.op == Opcode::kFence;
    EXPECT_EQ(fences, 2);
}

TEST(FencePass, ArchitecturallyTransparent)
{
    // Random programs without indirect calls must compute the same
    // result before and after the pass.
    RandomProgramParams params;
    params.useIndirectCalls = false;
    for (std::uint64_t seed = 400; seed < 408; ++seed) {
        const Program orig = generateRandomProgram(seed, params);
        bool has_indirect = false;
        for (const MicroOp &u : orig.code) {
            has_indirect |= u.op == Opcode::kCallReg ||
                            u.op == Opcode::kJmpReg;
        }
        if (has_indirect)
            continue;
        const Program fenced = insertFencesAfterBranches(orig);

        Interpreter a(orig), b2(fenced);
        a.run(5'000'000);
        b2.run(10'000'000);
        ASSERT_TRUE(a.halted() && b2.halted()) << seed;
        for (RegId r = 0; r < 18; ++r)
            EXPECT_EQ(a.reg(r), b2.reg(r)) << seed << " r" << int(r);
    }
}

TEST(FencePass, TransparentOnOooCore)
{
    auto w = makeWorkload("branchy");
    const Program orig = w->build(1);
    const Program fenced = insertFencesAfterBranches(orig);
    OooCore a(orig, makeProfile(Profile::kOoo));
    a.run(20'000, ~Cycle{0});
    OooCore c(fenced, makeProfile(Profile::kOoo));
    // The fenced program needs more *instructions* for the same work;
    // compare architectural registers at the same loop iteration by
    // running the same committed non-fence work. Simplest equivalent:
    // run both to the same iteration count via r18 (the induction
    // variable) and compare accumulators.
    c.run(30'000, ~Cycle{0});
    EXPECT_FALSE(a.halted());
    EXPECT_FALSE(c.halted());
    // Weak but meaningful check: both still running and no faults.
    EXPECT_GT(c.counters().committedInsts, 0u);
}

TEST(FencePass, BlocksSpectreV1OnInsecureHardware)
{
    // Apply the software mitigation to a Spectre-v1 victim and run it
    // on a completely unprotected OoO core: the fence keeps the
    // wrong-path loads from issuing, so nothing leaks.
    ProgramBuilder b("victim");
    b.word(0x1000, 1);               // bound (slow)
    b.zeroSegment(0x9000, 64);
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.fence();
    b.load(2, 1, 0, 8);
    b.movi(3, 0);
    auto skip = b.futureLabel();
    b.bne(2, 3, skip);               // taken; predicted not-taken
    b.movi(4, 0x9000);
    b.load(5, 4, 0, 8);              // wrong-path probe access
    b.bind(skip);
    b.halt();
    const Program orig = b.build();

    OooCore unprotected(orig, makeProfile(Profile::kOoo));
    unprotected.run(~std::uint64_t{0}, 100000);
    EXPECT_TRUE(unprotected.hierarchy().l1d().probe(0x9000))
        << "sanity: without the pass the wrong path touches the line";

    OooCore fenced(insertFencesAfterBranches(orig),
                   makeProfile(Profile::kOoo));
    fenced.run(~std::uint64_t{0}, 100000);
    EXPECT_FALSE(fenced.hierarchy().l1d().probe(0x9000))
        << "the fall-through fence must gate the wrong-path load";
}

TEST(FencePass, CostsFarMoreThanNda)
{
    // The paper cites 68-247% overhead for comparable compiler
    // mitigations vs NDA permissive's 10.7%: the software baseline
    // must be much slower than NDA strict on branchy code.
    auto w = makeWorkload("branchy");
    const Program orig = w->build(1);
    const Program fenced = insertFencesAfterBranches(orig);

    auto cycles_for = [](const Program &p, Profile prof) {
        OooCore core(p, makeProfile(prof));
        core.run(30'000, ~Cycle{0});
        return core.cycle();
    };
    const Cycle base = cycles_for(orig, Profile::kOoo);
    const Cycle nda = cycles_for(orig, Profile::kPermissive);
    const Cycle sw = cycles_for(fenced, Profile::kOoo);
    EXPECT_GT(sw, 3 * nda)
        << "software fences cost far more than NDA permissive "
        << "(paper: 68-247% vs 10.7%)";
    EXPECT_GT(sw, base * 2) << "fence-everywhere should be >100% here";
}

TEST(FencePass, RejectsIndirectControlFlow)
{
    ProgramBuilder b("ind");
    b.movi(1, 0);
    b.jmpr(1);
    b.halt();
    EXPECT_DEATH(insertFencesAfterBranches(b.build()),
                 "register-indirect");
}

} // namespace
} // namespace nda
