/**
 * @file
 * Differential-fuzzer harness tests: campaigns are deterministic for
 * any --jobs value (same seeds, same fingerprint), a healthy build
 * fuzzes clean, and the minimizer shrinks programs while preserving a
 * caller-supplied failure predicate.
 */

#include <gtest/gtest.h>

#include "fuzz/differential_fuzzer.hh"
#include "fuzz/minimizer.hh"
#include "isa/random_program.hh"

namespace nda {
namespace {

TEST(Fuzzer, CampaignIsCleanAndDeterministicAcrossJobs)
{
    FuzzParams p;
    p.runs = 12;
    p.seed0 = 1;

    p.jobs = 1;
    const FuzzResult serial = runFuzz(p);
    EXPECT_EQ(serial.executed + serial.skipped, p.runs);
    EXPECT_TRUE(serial.failures.empty())
        << serial.failures.front().detail;

    p.jobs = 4;
    const FuzzResult parallel = runFuzz(p);
    EXPECT_EQ(parallel.fingerprint, serial.fingerprint);
    EXPECT_EQ(parallel.executed, serial.executed);
    EXPECT_EQ(parallel.skipped, serial.skipped);
}

TEST(Fuzzer, ParamsForSeedAreDeterministicAndVaried)
{
    bool varied = false;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const RandomProgramParams a = paramsForSeed(seed);
        const RandomProgramParams b = paramsForSeed(seed);
        EXPECT_EQ(a.blocks, b.blocks);
        EXPECT_EQ(a.opsPerBlock, b.opsPerBlock);
        EXPECT_EQ(a.useFences, b.useFences);
        EXPECT_EQ(a.callChainDepth, b.callChainDepth);
        varied = varied || a.blocks != paramsForSeed(1).blocks ||
                 a.useFences != paramsForSeed(1).useFences;
    }
    EXPECT_TRUE(varied) << "every seed produced identical parameters";
}

TEST(Fuzzer, FuzzProgramJudgesSingleProfile)
{
    FuzzParams p;
    p.profiles = {Profile::kStrict};
    const Program prog = generateRandomProgram(3, paramsForSeed(3));
    const SeedOutcome out = fuzzProgram(prog, 3, p);
    EXPECT_FALSE(out.skipped);
    EXPECT_TRUE(out.failures.empty());
    EXPECT_NE(out.hash, 0u);
}

TEST(Minimizer, ShrinksUnderStructuralPredicate)
{
    // Predicate: "still contains a multiply". The minimizer should
    // strip nearly everything else.
    const Program prog = generateRandomProgram(5);
    const auto has_mul = [](const Program &p) {
        for (const MicroOp &u : p.code) {
            if (u.op == Opcode::kMul || u.op == Opcode::kMulImm)
                return true;
        }
        return false;
    };
    ASSERT_TRUE(has_mul(prog));

    MinimizeStats stats;
    const Program small = minimizeProgram(prog, has_mul, &stats);
    EXPECT_TRUE(has_mul(small));
    EXPECT_GT(stats.candidatesTried, 0u);
    EXPECT_LT(stats.opsAfter, stats.opsBefore);
    // One multiply plus the final halt is the irreducible core.
    EXPECT_LE(stats.opsAfter, 3u);
    // NOP substitution must preserve program length (and thus PCs).
    EXPECT_EQ(small.code.size(), prog.code.size());
}

TEST(Minimizer, RespectsCandidateBudget)
{
    const Program prog = generateRandomProgram(6);
    unsigned calls = 0;
    const auto pred = [&calls](const Program &) {
        ++calls;
        return false; // nothing ever reproduces; search must stop
    };
    MinimizeStats stats;
    const Program out = minimizeProgram(prog, pred, &stats, 50);
    EXPECT_LE(calls, 50u);
    EXPECT_EQ(stats.candidatesTried, calls);
    EXPECT_EQ(stats.opsAfter, stats.opsBefore); // nothing removed
    EXPECT_EQ(out.code.size(), prog.code.size());
}

} // namespace
} // namespace nda
