/**
 * @file
 * Differential property tests: randomly-generated terminating
 * programs must produce identical architectural state (spilled
 * registers + data segment contents + instruction count) on the
 * reference interpreter, the in-order core, and the OoO core under
 * EVERY security configuration. NDA and InvisiSpec may only change
 * timing, never results (paper §5: squash discards never-safe values).
 */

#include <gtest/gtest.h>

#include "core/core_factory.hh"
#include "harness/profiles.hh"
#include "isa/interpreter.hh"
#include "isa/random_program.hh"

namespace nda {
namespace {

struct ArchSnapshot {
    RegVal spilled[18] = {};
    std::vector<std::uint8_t> data;
    std::uint64_t faults = 0;

    bool
    operator==(const ArchSnapshot &o) const
    {
        for (int i = 0; i < 18; ++i) {
            if (spilled[i] != o.spilled[i])
                return false;
        }
        // A model that delivers a different number of faults has
        // diverged even when the memory image happens to agree.
        return data == o.data && faults == o.faults;
    }
};

ArchSnapshot
snapshotFromMem(const MemoryMap &mem, std::uint64_t faults = 0)
{
    ArchSnapshot s;
    for (int r = 0; r < 18; ++r) {
        s.spilled[r] =
            mem.read(kRandomProgResultBase + static_cast<Addr>(r) * 8, 8);
    }
    s.data.resize(kRandomProgDataBytes);
    mem.readBytes(kRandomProgDataBase, s.data.data(), s.data.size());
    s.faults = faults;
    return s;
}

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>>
{
};

TEST_P(DifferentialTest, CoreMatchesInterpreter)
{
    const auto seed = std::get<0>(GetParam());
    const auto profile = static_cast<Profile>(std::get<1>(GetParam()));

    const Program prog = generateRandomProgram(seed);

    Interpreter ref(prog);
    ref.run(5'000'000);
    ASSERT_TRUE(ref.halted()) << "random program must terminate";
    const ArchSnapshot want = snapshotFromMem(ref.mem(), ref.faultCount());

    SimConfig cfg = makeProfile(profile);
    auto core = makeCore(prog, cfg);
    core->run(~std::uint64_t{0}, 20'000'000);
    ASSERT_TRUE(core->halted()) << cfg.name << " seed " << seed;

    EXPECT_EQ(core->committedInsts(), ref.instCount())
        << cfg.name << " seed " << seed;

    const ArchSnapshot got =
        snapshotFromMem(core->mem(), core->counters().faults);
    for (int r = 0; r < 18; ++r) {
        EXPECT_EQ(got.spilled[r], want.spilled[r])
            << cfg.name << " seed " << seed << " r" << r;
    }
    EXPECT_TRUE(got.data == want.data)
        << cfg.name << " seed " << seed << " data segment differs";
    EXPECT_EQ(got.faults, want.faults)
        << cfg.name << " seed " << seed << " fault count differs";
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, DifferentialTest,
    ::testing::Combine(
        ::testing::Range<std::uint64_t>(1, 21),
        ::testing::Range(0, static_cast<int>(Profile::kNumProfiles))),
    [](const auto &info) {
        std::string name =
            "seed" + std::to_string(std::get<0>(info.param)) + "_" +
            std::string(profileName(
                static_cast<Profile>(std::get<1>(info.param))));
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// A few structurally different generator configurations.
TEST(DifferentialExtra, HeavyMemoryPrograms)
{
    RandomProgramParams params;
    params.blocks = 20;
    params.opsPerBlock = 12;
    for (std::uint64_t seed = 100; seed < 106; ++seed) {
        const Program prog = generateRandomProgram(seed, params);
        Interpreter ref(prog);
        ref.run(5'000'000);
        ASSERT_TRUE(ref.halted());
        SimConfig cfg = makeProfile(Profile::kFullProtection);
        auto core = makeCore(prog, cfg);
        core->run(~std::uint64_t{0}, 20'000'000);
        ASSERT_TRUE(core->halted()) << seed;
        EXPECT_TRUE(snapshotFromMem(core->mem(),
                                    core->counters().faults) ==
                    snapshotFromMem(ref.mem(), ref.faultCount()))
            << seed;
    }
}

TEST(DifferentialExtra, NoMemoryPrograms)
{
    RandomProgramParams params;
    params.useMemory = false;
    for (std::uint64_t seed = 200; seed < 206; ++seed) {
        const Program prog = generateRandomProgram(seed, params);
        Interpreter ref(prog);
        ref.run(5'000'000);
        ASSERT_TRUE(ref.halted());
        auto core = makeCore(prog, makeProfile(Profile::kStrictBr));
        core->run(~std::uint64_t{0}, 20'000'000);
        ASSERT_TRUE(core->halted()) << seed;
        EXPECT_TRUE(snapshotFromMem(core->mem(),
                                    core->counters().faults) ==
                    snapshotFromMem(ref.mem(), ref.faultCount()))
            << seed;
    }
}

TEST(DifferentialExtra, NoIndirectCallPrograms)
{
    RandomProgramParams params;
    params.useIndirectCalls = false;
    for (std::uint64_t seed = 300; seed < 306; ++seed) {
        const Program prog = generateRandomProgram(seed, params);
        Interpreter ref(prog);
        ref.run(5'000'000);
        ASSERT_TRUE(ref.halted());
        auto core = makeCore(prog, makeProfile(Profile::kOoo));
        core->run(~std::uint64_t{0}, 20'000'000);
        ASSERT_TRUE(core->halted()) << seed;
        EXPECT_TRUE(snapshotFromMem(core->mem(),
                                    core->counters().faults) ==
                    snapshotFromMem(ref.mem(), ref.faultCount()))
            << seed;
    }
}

} // namespace
} // namespace nda
