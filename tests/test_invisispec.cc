/**
 * @file
 * Tests of the InvisiSpec comparison model (paper §6.1, Table 2 rows
 * 7-8): speculative loads access the hierarchy invisibly, exposure
 * happens at the visibility point, and IS-Future validates before
 * retirement.
 */

#include <gtest/gtest.h>

#include "core/ooo_core.hh"
#include "isa/program.hh"

namespace nda {
namespace {

/** A wrong-path load under a slow mispredicted branch. */
Program
wrongPathLoadProgram()
{
    ProgramBuilder b("wp");
    b.word(0x1000, 1);               // condition (slow)
    b.zeroSegment(0x9000, 64);
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.fence();
    b.load(2, 1, 0, 8);
    b.movi(3, 0);
    auto skip = b.futureLabel();
    b.bne(2, 3, skip);               // taken; predicted not-taken
    b.movi(4, 0x9000);
    b.load(5, 4, 0, 8);              // wrong-path load
    b.bind(skip);
    b.halt();
    return b.build();
}

TEST(InvisiSpec, WrongPathLoadLeavesNoTrace)
{
    for (auto mode :
         {InvisiSpecMode::kSpectre, InvisiSpecMode::kFuture}) {
        SimConfig cfg;
        cfg.security.invisiSpec = mode;
        OooCore core(wrongPathLoadProgram(), cfg);
        core.run(~std::uint64_t{0}, 100000);
        ASSERT_TRUE(core.halted());
        EXPECT_FALSE(core.hierarchy().l1d().probe(0x9000))
            << invisiSpecName(mode)
            << ": squashed shadow load must not fill the cache";
        EXPECT_FALSE(core.hierarchy().l2().probe(0x9000));
    }
}

TEST(InvisiSpec, BaselineLeavesTrace)
{
    SimConfig cfg;
    OooCore core(wrongPathLoadProgram(), cfg);
    core.run(~std::uint64_t{0}, 100000);
    ASSERT_TRUE(core.halted());
    EXPECT_TRUE(core.hierarchy().l1d().probe(0x9000));
}

TEST(InvisiSpec, CorrectPathLoadEventuallyExposed)
{
    // A correct-path load under a (correctly-predicted) branch is
    // shadow at first but must be exposed so later code gets hits.
    ProgramBuilder b("expose");
    b.word(0x1000, 1);
    b.word(0x9000, 5);
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.fence();
    b.load(2, 1, 0, 8);
    b.movi(3, 0);
    auto go = b.futureLabel();
    b.beq(2, 3, go);                 // not taken (1 != 0)
    b.movi(4, 0x9000);
    b.load(5, 4, 0, 8);              // correct-path shadow load
    b.bind(go);
    b.halt();
    for (auto mode :
         {InvisiSpecMode::kSpectre, InvisiSpecMode::kFuture}) {
        SimConfig cfg;
        cfg.security.invisiSpec = mode;
        OooCore core(b.build(), cfg);
        core.run(~std::uint64_t{0}, 100000);
        ASSERT_TRUE(core.halted());
        EXPECT_EQ(core.archReg(5), 5u);
        EXPECT_TRUE(core.hierarchy().l1d().probe(0x9000))
            << invisiSpecName(mode)
            << ": committed shadow load must be exposed";
    }
}

TEST(InvisiSpec, FutureSlowerThanSpectre)
{
    // Validation stalls make IS-Future cost more on miss-heavy code.
    ProgramBuilder b("missy");
    b.zeroSegment(0x100000, 1 << 20);
    b.movi(1, 0x100000);
    b.movi(18, 0);
    b.movi(19, 2000);
    auto loop = b.label();
    b.muli(2, 18, 0x9E3779B1);
    b.andi(2, 2, 0xFFFF8);
    b.add(3, 1, 2);
    b.load(4, 3, 0, 8);
    b.add(5, 5, 4);
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
    b.halt();
    const Program p = b.build();

    Cycle cycles[3] = {};
    int i = 0;
    for (auto mode : {InvisiSpecMode::kOff, InvisiSpecMode::kSpectre,
                      InvisiSpecMode::kFuture}) {
        SimConfig cfg;
        cfg.security.invisiSpec = mode;
        OooCore core(p, cfg);
        core.run(~std::uint64_t{0}, 10'000'000);
        ASSERT_TRUE(core.halted());
        cycles[i++] = core.cycle();
    }
    EXPECT_LE(cycles[0], cycles[1]);
    EXPECT_LT(cycles[1], cycles[2])
        << "IS-Future validation must cost more than IS-Spectre";
}

TEST(InvisiSpec, ShadowLoadStillReturnsCorrectData)
{
    ProgramBuilder b("data");
    b.word(0x2000, 0xABCD);
    b.word(0x1000, 1);
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.fence();
    b.load(2, 1, 0, 8);
    b.movi(3, 0);
    auto go = b.futureLabel();
    b.beq(2, 3, go);                 // not taken
    b.movi(4, 0x2000);
    b.load(5, 4, 0, 8);
    b.bind(go);
    b.halt();
    SimConfig cfg;
    cfg.security.invisiSpec = InvisiSpecMode::kFuture;
    OooCore core(b.build(), cfg);
    core.run(~std::uint64_t{0}, 100000);
    EXPECT_EQ(core.archReg(5), 0xABCDu);
}

} // namespace
} // namespace nda
