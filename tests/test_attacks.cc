/**
 * @file
 * Security test suite: every attack PoC is run against every machine
 * profile, and the observed leak/block outcome must match the paper's
 * Table 2 exactly. Also checks the covert-channel signal magnitudes
 * the paper reports (Fig 4: ~140-cycle cache signal, ~16-cycle BTB
 * signal) and Fig 8 (NDA flattens the curves).
 */

#include <gtest/gtest.h>

#include "attacks/attack_registry.hh"
#include "attacks/attacks.hh"
#include "harness/profiles.hh"

namespace nda {
namespace {

/** Profiles to test attacks against (in-order is trivially immune). */
std::vector<Profile>
attackProfiles()
{
    return {
        Profile::kOoo,
        Profile::kPermissive,
        Profile::kPermissiveBr,
        Profile::kStrict,
        Profile::kStrictBr,
        Profile::kRestrictedLoads,
        Profile::kFullProtection,
        Profile::kInvisiSpecSpectre,
        Profile::kInvisiSpecFuture,
    };
}

class AttackMatrixTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(AttackMatrixTest, OutcomeMatchesTable2)
{
    const auto attacks = makeAllAttacks();
    const auto &attack =
        *attacks[static_cast<std::size_t>(std::get<0>(GetParam()))];
    const Profile profile =
        attackProfiles()[static_cast<std::size_t>(std::get<1>(GetParam()))];

    SimConfig cfg = makeProfile(profile);
    const AttackResult result = attack.run(cfg, 42);
    const bool expect_blocked = attack.expectedBlocked(cfg.security);

    EXPECT_EQ(result.leaked(), !expect_blocked)
        << attack.name() << " on " << cfg.name << ": signal "
        << result.signal << " (threshold " << result.threshold << ")";

    // The DIFT oracle is an independent detector of the same event:
    // it must agree with the timing verdict on every cell.
    EXPECT_EQ(result.oracle.leaked(), result.leaked())
        << attack.name() << " on " << cfg.name
        << ": timing and oracle disagree — "
        << result.oracle.summary();
}

INSTANTIATE_TEST_SUITE_P(
    AllAttacksAllProfiles, AttackMatrixTest,
    ::testing::Combine(::testing::Range(0, 11), ::testing::Range(0, 9)),
    [](const auto &info) {
        const auto attacks = makeAllAttacks();
        std::string name =
            attacks[static_cast<std::size_t>(std::get<0>(info.param))]
                ->name() +
            "_on_" +
            profileName(attackProfiles()[static_cast<std::size_t>(
                std::get<1>(info.param))]);
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(AttackSignals, CacheChannelMagnitudeMatchesFig4)
{
    // Paper Fig 4: the correct guess is ~140 cycles faster through
    // the d-cache channel.
    SpectreV1Cache atk;
    const auto r = atk.run(makeProfile(Profile::kOoo), 42);
    ASSERT_TRUE(r.leaked());
    EXPECT_NEAR(r.signal, 140.0, 30.0);
    EXPECT_EQ(r.fastestGuess == 42 || r.timings[42] < 20, true);
}

TEST(AttackSignals, BtbChannelMagnitudeMatchesFig4)
{
    // Paper Fig 4/5: the BTB channel signal is the mispredict
    // penalty, ~16 cycles on the paper's configuration.
    SpectreV1Btb atk;
    const auto r = atk.run(makeProfile(Profile::kOoo), 42);
    ASSERT_TRUE(r.leaked());
    EXPECT_GT(r.signal, 5.0);
    EXPECT_LT(r.signal, 40.0);
}

TEST(AttackSignals, NdaFlattensCurvesLikeFig8)
{
    // Paper Fig 8: under NDA permissive the secret guess is
    // indistinguishable from the other 255 candidates.
    for (auto *attack_name : {"spectre-v1-cache", "spectre-v1-btb"}) {
        auto atk = makeAttack(attack_name);
        ASSERT_NE(atk, nullptr);
        const auto r = atk->run(makeProfile(Profile::kPermissive), 42);
        EXPECT_FALSE(r.leaked()) << attack_name;
        EXPECT_LT(r.signal, r.threshold) << attack_name;
    }
}

TEST(AttackSignals, DifferentSecretsRecovered)
{
    // The channel must carry arbitrary byte values, not just one.
    SpectreV1Cache atk;
    for (std::uint8_t secret : {7, 42, 201, 255}) {
        const auto r = atk.run(makeProfile(Profile::kOoo), secret);
        EXPECT_TRUE(r.leaked()) << int(secret);
        EXPECT_LT(r.timings[secret], 60.0) << int(secret);
    }
}

TEST(AttackSignals, MeltdownNeedsTheHardwareFlaw)
{
    Meltdown atk;
    SimConfig cfg = makeProfile(Profile::kOoo);
    cfg.security.meltdownFlaw = false; // fixed silicon
    const auto r = atk.run(cfg, 42);
    EXPECT_FALSE(r.leaked())
        << "without the implementation flaw there is nothing to leak";
}

TEST(AttackRegistry, NamesAndTaxonomy)
{
    const auto attacks = makeAllAttacks();
    ASSERT_EQ(attacks.size(), 11u);
    int chosen_code = 0;
    int cross_thread = 0;
    for (const auto &a : attacks) {
        EXPECT_FALSE(a->name().empty());
        EXPECT_FALSE(a->description().empty());
        EXPECT_TRUE(a->channel() == "d-cache" || a->channel() == "btb" ||
                    a->channel() == "port-contention" ||
                    a->channel() == "mshr-contention");
        chosen_code += a->isChosenCode();
        cross_thread += a->crossThread();
    }
    EXPECT_EQ(chosen_code, 2) << "meltdown + lazyfp";
    EXPECT_EQ(cross_thread, 2) << "smother-port + smt-mshr";
    EXPECT_NE(makeAttack("spectre-v1-cache"), nullptr);
    EXPECT_EQ(makeAttack("no-such-attack"), nullptr);
}

TEST(AttackRegistry, InOrderTriviallyImmune)
{
    // The paper's other fully-secure baseline: no speculation at all.
    SpectreV1Cache atk;
    const auto r = atk.run(makeProfile(Profile::kInOrder), 42);
    EXPECT_FALSE(r.leaked());
}

} // namespace
} // namespace nda
