/**
 * @file
 * Tests for the OoO core's building blocks: physical register file,
 * rename map, issue queue, and load/store queue.
 */

#include <gtest/gtest.h>

#include "core/issue_queue.hh"
#include "core/lsq.hh"
#include "core/phys_reg_file.hh"
#include "core/rename_map.hh"

namespace nda {
namespace {

TEST(PhysRegFile, ResetReservesArchRegs)
{
    PhysRegFile regs(64);
    regs.reset(32);
    EXPECT_EQ(regs.numFree(), 32u);
    for (unsigned r = 0; r < 32; ++r)
        EXPECT_TRUE(regs.ready(static_cast<PhysRegId>(r)));
}

TEST(PhysRegFile, AllocClearsReady)
{
    PhysRegFile regs(64);
    regs.reset(32);
    const PhysRegId r = regs.alloc();
    EXPECT_GE(r, 32);
    EXPECT_FALSE(regs.ready(r));
    regs.setValue(r, 42);
    regs.setReady(r);
    EXPECT_EQ(regs.value(r), 42u);
    EXPECT_TRUE(regs.ready(r));
}

TEST(PhysRegFile, FreeReturnsToPool)
{
    PhysRegFile regs(40);
    regs.reset(32);
    std::vector<PhysRegId> got;
    for (int i = 0; i < 8; ++i)
        got.push_back(regs.alloc());
    EXPECT_FALSE(regs.hasFree());
    regs.free(got[0]);
    EXPECT_TRUE(regs.hasFree());
    EXPECT_EQ(regs.alloc(), got[0]);
}

TEST(RenameMap, RenameReturnsPrevious)
{
    RenameMap map;
    EXPECT_EQ(map.lookup(5), 5);
    const PhysRegId prev = map.rename(5, 40);
    EXPECT_EQ(prev, 5);
    EXPECT_EQ(map.lookup(5), 40);
    map.restore(5, prev);
    EXPECT_EQ(map.lookup(5), 5);
}

DynInstPool &
testPool()
{
    static DynInstPool pool;
    return pool;
}

DynInstPtr
makeInst(InstSeqNum seq, Opcode op = Opcode::kAdd)
{
    DynInstPtr inst = testPool().create();
    inst->seq = seq;
    inst->uop.op = op;
    inst->uop.size = 8;
    return inst;
}

TEST(DynInstPool, RecyclesThroughFreeList)
{
    DynInstPool pool;
    DynInst *first;
    {
        DynInstPtr a = pool.create();
        first = a.get();
        a->seq = 7;
        a->bypassedStores.push_back(3);
        EXPECT_EQ(pool.freeCount(), pool.capacity() - 1);
    }
    // Released handle returned the slot; the next create reuses it
    // with fully reset state.
    EXPECT_EQ(pool.freeCount(), pool.capacity());
    DynInstPtr b = pool.create();
    EXPECT_EQ(b.get(), first);
    EXPECT_EQ(b->seq, 0u);
    EXPECT_TRUE(b->bypassedStores.empty());
}

TEST(DynInstPool, HandleRefcounting)
{
    DynInstPool pool;
    DynInstPtr a = pool.create();
    const std::size_t free_after_one = pool.freeCount();
    {
        DynInstPtr b = a;            // copy
        DynInstPtr c = std::move(b); // move keeps one ref
        EXPECT_EQ(c, a);
        EXPECT_EQ(b, nullptr);
        EXPECT_EQ(pool.freeCount(), free_after_one);
    }
    EXPECT_EQ(pool.freeCount(), free_after_one);
    a = nullptr;
    EXPECT_EQ(pool.freeCount(), pool.capacity());
}

TEST(DynInstPool, GrowsBeyondOneSlab)
{
    DynInstPool pool;
    std::vector<DynInstPtr> held;
    for (int i = 0; i < 1000; ++i)
        held.push_back(pool.create());
    EXPECT_GE(pool.capacity(), 1000u);
    // All handles distinct.
    EXPECT_EQ(pool.freeCount(), pool.capacity() - 1000);
}

TEST(IssueQueue, CapacityEnforced)
{
    IssueQueue iq(2);
    iq.insert(makeInst(1));
    EXPECT_FALSE(iq.full());
    iq.insert(makeInst(2));
    EXPECT_TRUE(iq.full());
}

TEST(IssueQueue, SelectsOnlyReadySources)
{
    PhysRegFile regs(64);
    regs.reset(32);
    IssueQueue iq(8);
    auto a = makeInst(1);
    a->src1 = regs.alloc(); // not ready
    auto c = makeInst(2);
    c->src1 = 3; // arch reg: ready
    iq.insert(a);
    iq.insert(c);
    std::vector<InstSeqNum> issued;
    iq.selectReady(regs, [&](const DynInstPtr &inst) {
        issued.push_back(inst->seq);
        return true;
    });
    ASSERT_EQ(issued.size(), 1u);
    EXPECT_EQ(issued[0], 2u);
    EXPECT_EQ(iq.size(), 1u);
}

TEST(IssueQueue, AgeOrderedSelect)
{
    PhysRegFile regs(64);
    regs.reset(32);
    IssueQueue iq(8);
    for (InstSeqNum s = 1; s <= 4; ++s)
        iq.insert(makeInst(s));
    std::vector<InstSeqNum> issued;
    iq.selectReady(regs, [&](const DynInstPtr &inst) {
        issued.push_back(inst->seq);
        return issued.size() <= 2; // issue only the first two
    });
    ASSERT_GE(issued.size(), 2u);
    EXPECT_EQ(issued[0], 1u);
    EXPECT_EQ(issued[1], 2u);
    EXPECT_EQ(iq.size(), 2u);
}

TEST(IssueQueue, StoreNeedsOnlyBaseRegister)
{
    PhysRegFile regs(64);
    regs.reset(32);
    IssueQueue iq(8);
    auto st = makeInst(1, Opcode::kStore);
    st->src1 = 3;            // ready (arch)
    st->src2 = regs.alloc(); // data not ready — must not block issue
    iq.insert(st);
    int issued = 0;
    iq.selectReady(regs, [&](const DynInstPtr &) {
        ++issued;
        return true;
    });
    EXPECT_EQ(issued, 1);
}

TEST(IssueQueue, RemoveSquashed)
{
    PhysRegFile regs(64);
    regs.reset(32);
    IssueQueue iq(8);
    auto a = makeInst(1);
    auto c = makeInst(2);
    iq.insert(a);
    iq.insert(c);
    a->squashed = true;
    iq.removeSquashed();
    EXPECT_EQ(iq.size(), 1u);
    EXPECT_FALSE(a->inIq);
    EXPECT_TRUE(c->inIq);
}

// ---------------------------------------------------------------------------
// LSQ
// ---------------------------------------------------------------------------

class LsqTest : public ::testing::Test
{
  protected:
    LsqTest() : lsq(8, 8), regs(64) { regs.reset(32); }

    DynInstPtr
    addStore(InstSeqNum seq, Addr addr, RegVal data, unsigned size = 8,
             bool resolved = true)
    {
        auto st = makeInst(seq, Opcode::kStore);
        st->uop.size = static_cast<std::uint8_t>(size);
        st->effAddr = addr;
        st->effAddrValid = resolved;
        st->src2 = 2; // arch reg 2 holds the data
        regs.setValue(2, data);
        lsq.insertStore(st);
        return st;
    }

    DynInstPtr
    addLoad(InstSeqNum seq, Addr addr, unsigned size = 8)
    {
        auto ld = makeInst(seq, Opcode::kLoad);
        ld->uop.size = static_cast<std::uint8_t>(size);
        ld->effAddr = addr;
        ld->effAddrValid = true;
        lsq.insertLoad(ld);
        return ld;
    }

    Lsq lsq;
    PhysRegFile regs;
};

TEST_F(LsqTest, ForwardFromCoveringStore)
{
    addStore(1, 0x100, 0xAABBCCDD11223344ULL);
    auto r = lsq.searchStores(2, 0x100, 8, regs);
    EXPECT_TRUE(r.forward);
    EXPECT_EQ(r.value, 0xAABBCCDD11223344ULL);
}

TEST_F(LsqTest, ForwardSubWordWithShift)
{
    addStore(1, 0x100, 0xAABBCCDD11223344ULL);
    auto r = lsq.searchStores(2, 0x102, 2, regs);
    EXPECT_TRUE(r.forward);
    EXPECT_EQ(r.value, 0x1122u); // little-endian bytes at 0x102
}

TEST_F(LsqTest, YoungestCoveringStoreWins)
{
    addStore(1, 0x100, 111);
    addStore(2, 0x100, 222);
    auto r = lsq.searchStores(3, 0x100, 8, regs);
    EXPECT_TRUE(r.forward);
    EXPECT_EQ(r.value, 222u);
}

TEST_F(LsqTest, PartialOverlapStalls)
{
    addStore(1, 0x100, 7, 4);
    auto r = lsq.searchStores(2, 0x102, 8, regs);
    EXPECT_TRUE(r.mustStall);
    EXPECT_FALSE(r.forward);
}

TEST_F(LsqTest, UnresolvedStoreIsBypassed)
{
    auto st = addStore(1, 0, 0, 8, /*resolved=*/false);
    auto r = lsq.searchStores(2, 0x100, 8, regs);
    EXPECT_FALSE(r.forward);
    EXPECT_FALSE(r.mustStall);
    ASSERT_EQ(r.bypassedStores.size(), 1u);
    EXPECT_EQ(r.bypassedStores[0], st->seq);
}

TEST_F(LsqTest, StoreDataNotReadyStalls)
{
    auto st = makeInst(1, Opcode::kStore);
    st->effAddr = 0x100;
    st->effAddrValid = true;
    st->src2 = regs.alloc(); // not broadcast: NDA-unsafe value
    lsq.insertStore(st);
    auto r = lsq.searchStores(2, 0x100, 8, regs);
    EXPECT_TRUE(r.mustStall)
        << "unsafe store data must not forward (paper §5.1)";
}

TEST_F(LsqTest, ViolationDetection)
{
    auto st = addStore(1, 0x100, 0, 8, /*resolved=*/false);
    auto ld = addLoad(2, 0x104, 4);
    ld->executed = true;
    ld->bypassedStores = {1};
    st->effAddrValid = true;
    auto victim = lsq.checkViolations(*st);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->seq, 2u);
}

TEST_F(LsqTest, NoViolationWithoutOverlap)
{
    auto st = addStore(1, 0x100, 0, 8, false);
    auto ld = addLoad(2, 0x200, 8);
    ld->executed = true;
    ld->bypassedStores = {1};
    st->effAddrValid = true;
    EXPECT_EQ(lsq.checkViolations(*st), nullptr);
}

TEST_F(LsqTest, NoViolationIfLoadDidNotBypass)
{
    auto st = addStore(1, 0x100, 0, 8, false);
    auto ld = addLoad(2, 0x100, 8);
    ld->executed = true; // but bypass set empty (issued after resolve)
    st->effAddrValid = true;
    EXPECT_EQ(lsq.checkViolations(*st), nullptr);
}

TEST_F(LsqTest, RetireBypassClearsLoads)
{
    addStore(1, 0x100, 0, 8, false);
    auto ld = addLoad(2, 0x200, 8);
    ld->bypassedStores = {1};
    auto cleared = lsq.retireBypass(1);
    ASSERT_EQ(cleared.size(), 1u);
    EXPECT_EQ(cleared[0]->seq, 2u);
    EXPECT_TRUE(ld->bypassedStores.empty());
}

TEST_F(LsqTest, SquashRemovesYounger)
{
    addLoad(1, 0x100);
    addLoad(5, 0x200);
    addStore(3, 0x300, 0);
    lsq.squashYoungerThan(2);
    EXPECT_EQ(lsq.lqSize(), 1u);
    EXPECT_EQ(lsq.sqSize(), 0u);
}

TEST_F(LsqTest, OverlapPredicates)
{
    EXPECT_TRUE(Lsq::overlaps(0x100, 8, 0x104, 8));
    EXPECT_FALSE(Lsq::overlaps(0x100, 4, 0x104, 4));
    EXPECT_TRUE(Lsq::contains(0x102, 2, 0x100, 8));
    EXPECT_FALSE(Lsq::contains(0x100, 8, 0x102, 2));
}

} // namespace
} // namespace nda
