/**
 * @file
 * Tests of the in-order (TimingSimpleCPU-like) baseline: correctness
 * and the timing properties the paper's comparison relies on.
 */

#include <gtest/gtest.h>

#include "core/inorder_core.hh"
#include "core/ooo_core.hh"
#include "isa/interpreter.hh"
#include "isa/program.hh"

namespace nda {
namespace {

Program
sumLoop(int n)
{
    ProgramBuilder b("sum");
    b.movi(1, 0);
    b.movi(2, n);
    b.movi(3, 0);
    auto loop = b.label();
    b.add(3, 3, 1);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.build();
}

TEST(InOrderCore, ArchitecturalCorrectness)
{
    const Program p = sumLoop(100);
    Interpreter ref(p);
    ref.run(1'000'000);
    SimConfig cfg;
    cfg.inOrder = true;
    InOrderCore core(p, cfg);
    core.run(~std::uint64_t{0}, 10'000'000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.archReg(3), ref.reg(3));
    EXPECT_EQ(core.committedInsts(), ref.instCount());
}

TEST(InOrderCore, CpiAtLeastFetchBound)
{
    // TimingSimpleCPU-like model: every instruction pays an i-cache
    // access (overlapped one cycle with execute), so CPI stays near
    // the L1I hit latency.
    const Program p = sumLoop(2000);
    SimConfig cfg;
    cfg.inOrder = true;
    InOrderCore core(p, cfg);
    core.run(~std::uint64_t{0}, 10'000'000);
    ASSERT_TRUE(core.halted());
    EXPECT_GE(core.counters().cpi(), 3.0);
}

TEST(InOrderCore, LineBufferModeIsFaster)
{
    const Program p = sumLoop(2000);
    SimConfig slow, fast;
    slow.inOrder = fast.inOrder = true;
    fast.inOrderParams.lineBuffer = true;
    InOrderCore a(p, slow), c(p, fast);
    a.run(~std::uint64_t{0}, 10'000'000);
    c.run(~std::uint64_t{0}, 10'000'000);
    EXPECT_LT(c.cycle(), a.cycle());
}

TEST(InOrderCore, AlwaysSlowerThanOoo)
{
    const Program p = sumLoop(2000);
    SimConfig io;
    io.inOrder = true;
    InOrderCore in_order(p, io);
    in_order.run(~std::uint64_t{0}, 10'000'000);
    OooCore ooo(p, {});
    ooo.run(~std::uint64_t{0}, 10'000'000);
    EXPECT_GT(in_order.cycle(), ooo.cycle());
}

TEST(InOrderCore, MemoryLatencyCharged)
{
    // A DRAM-missing load must cost the full round trip.
    ProgramBuilder b("miss");
    b.word(0x100000, 7);
    b.movi(1, 0x100000);
    b.load(2, 1, 0, 8);
    b.halt();
    SimConfig cfg;
    cfg.inOrder = true;
    InOrderCore core(b.build(), cfg);
    core.run(~std::uint64_t{0}, 100000);
    ASSERT_TRUE(core.halted());
    EXPECT_GE(core.cycle(), 140u);
    EXPECT_EQ(core.archReg(2), 7u);
}

TEST(InOrderCore, FaultGoesToHandler)
{
    ProgramBuilder b("fault");
    b.segment(0x4000, {0x1}, MemPerm::kKernel);
    b.movi(1, 0x4000);
    b.load(2, 1, 0, 1);
    b.halt();
    auto handler = b.label();
    b.movi(3, 5);
    b.halt();
    b.faultHandlerAt(handler);
    SimConfig cfg;
    cfg.inOrder = true;
    InOrderCore core(b.build(), cfg);
    core.run(~std::uint64_t{0}, 100000);
    EXPECT_EQ(core.archReg(3), 5u);
    EXPECT_EQ(core.archReg(2), 0u);
}

TEST(InOrderCore, NoSpeculationNoMispredicts)
{
    const Program p = sumLoop(500);
    SimConfig cfg;
    cfg.inOrder = true;
    InOrderCore core(p, cfg);
    core.run(~std::uint64_t{0}, 10'000'000);
    EXPECT_EQ(core.counters().condMispredicts, 0u);
    EXPECT_EQ(core.counters().squashes, 0u);
    EXPECT_DOUBLE_EQ(core.counters().ilp(), 1.0)
        << "ILP cannot exceed 1.0 in order (paper Fig 9c)";
}

} // namespace
} // namespace nda
