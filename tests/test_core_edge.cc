/**
 * @file
 * Stress and edge-case tests of the OoO core: tiny structural
 * configurations, resource exhaustion, fence storms, deep indirect
 * call chains, unaligned/cross-page memory traffic, and pathological
 * control flow — all differentially checked against the interpreter.
 */

#include <gtest/gtest.h>

#include "core/core_factory.hh"
#include "core/ooo_core.hh"
#include "harness/profiles.hh"
#include "isa/interpreter.hh"
#include "isa/random_program.hh"

namespace nda {
namespace {

/** Differential check helper for a fixed program. */
void
expectMatchesInterpreter(const Program &p, const SimConfig &cfg,
                         const char *what)
{
    Interpreter ref(p);
    ref.run(10'000'000);
    ASSERT_TRUE(ref.halted()) << what;
    auto core = makeCore(p, cfg);
    core->run(~std::uint64_t{0}, 50'000'000);
    ASSERT_TRUE(core->halted()) << what << " (" << cfg.name << ")";
    EXPECT_EQ(core->committedInsts(), ref.instCount()) << what;
    for (RegId r = 0; r < kNumArchRegs; ++r) {
        EXPECT_EQ(core->archReg(r), ref.reg(r))
            << what << " r" << int(r) << " (" << cfg.name << ")";
    }
}

SimConfig
tinyConfig()
{
    SimConfig cfg = makeProfile(Profile::kFullProtection);
    cfg.core.robEntries = 8;
    cfg.core.iqEntries = 4;
    cfg.core.lqEntries = 2;
    cfg.core.sqEntries = 2;
    cfg.core.numPhysRegs = kNumArchRegs + 8;
    cfg.core.fetchQueueEntries = 4;
    cfg.core.fetchWidth = 2;
    cfg.core.dispatchWidth = 2;
    cfg.core.issueWidth = 2;
    cfg.core.commitWidth = 2;
    return cfg;
}

TEST(CoreEdge, TinyStructuresStillCorrect)
{
    // A near-minimal machine must still execute random programs
    // correctly — every structural-full stall path gets exercised.
    for (std::uint64_t seed = 500; seed < 510; ++seed) {
        const Program p = generateRandomProgram(seed);
        expectMatchesInterpreter(p, tinyConfig(), "tiny");
    }
}

TEST(CoreEdge, SingleEntryQueuesDoNotDeadlock)
{
    SimConfig cfg = tinyConfig();
    cfg.core.lqEntries = 1;
    cfg.core.sqEntries = 1;
    cfg.core.iqEntries = 2;
    ProgramBuilder b("one");
    b.zeroSegment(0x1000, 256);
    b.movi(1, 0x1000);
    b.movi(18, 0);
    b.movi(19, 40);
    auto loop = b.label();
    b.andi(2, 18, 31);
    b.shli(2, 2, 3);
    b.add(3, 1, 2);
    b.store(3, 0, 18, 8);
    b.load(4, 3, 0, 8);
    b.add(5, 5, 4);
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
    b.halt();
    expectMatchesInterpreter(b.build(), cfg, "one-entry LSQ");
}

TEST(CoreEdge, FenceStorm)
{
    ProgramBuilder b("fences");
    b.zeroSegment(0x1000, 64);
    b.movi(1, 0x1000);
    b.movi(18, 0);
    b.movi(19, 30);
    auto loop = b.label();
    b.fence();
    b.store(1, 0, 18, 8);
    b.fence();
    b.load(2, 1, 0, 8);
    b.fence();
    b.add(3, 3, 2);
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
    b.halt();
    for (Profile p : {Profile::kOoo, Profile::kFullProtection}) {
        expectMatchesInterpreter(b.build(), makeProfile(p),
                                 "fence storm");
    }
}

TEST(CoreEdge, UnalignedCrossPageTraffic)
{
    ProgramBuilder b("cross");
    b.zeroSegment(0x1000, 3 * 4096);
    b.movi(1, 0x1FF9);               // 7 bytes below a page boundary
    b.movi(2, 0x1122334455667788ULL);
    b.movi(18, 0);
    b.movi(19, 16);
    auto loop = b.label();
    b.store(1, 0, 2, 8);             // crosses the page every time
    b.load(3, 1, 0, 8);
    b.load(4, 1, 3, 4);              // crosses inside the word
    b.add(5, 3, 4);
    b.addi(1, 1, 8);
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
    b.halt();
    expectMatchesInterpreter(b.build(), makeProfile(Profile::kOoo),
                             "cross page");
    expectMatchesInterpreter(b.build(),
                             makeProfile(Profile::kStrictBr),
                             "cross page");
}

TEST(CoreEdge, SelfModifyingRegisterChase)
{
    // rd == rs1 loads in a tight chain (renaming stress).
    ProgramBuilder b("self");
    b.zeroSegment(0x1000, 1024);
    for (int i = 0; i < 127; ++i)
        b.word(0x1000 + i * 8, 0x1000 + (i + 1) * 8u);
    b.word(0x1000 + 127 * 8, 0x1000);
    b.movi(1, 0x1000);
    b.movi(18, 0);
    b.movi(19, 300);
    auto loop = b.label();
    b.load(1, 1, 0, 8);              // r1 = [r1]
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
    b.halt();
    expectMatchesInterpreter(b.build(),
                             makeProfile(Profile::kRestrictedLoads),
                             "self chase");
}

TEST(CoreEdge, DenseIndirectCallMix)
{
    // Register-indirect calls through a rotating pointer set exercise
    // BTB replacement and RAS recovery together.
    ProgramBuilder b("icalls");
    auto main_l = b.futureLabel();
    b.jmp(main_l);
    std::vector<Addr> fns;
    for (int f = 0; f < 6; ++f) {
        fns.push_back(b.here());
        b.addi(2, 2, f + 1);
        b.ret(28);
    }
    std::vector<std::uint8_t> table;
    for (Addr pc : fns) {
        for (int j = 0; j < 8; ++j)
            table.push_back(static_cast<std::uint8_t>(pc >> (8 * j)));
    }
    b.segment(0x3000, std::move(table));
    b.bind(main_l);
    b.movi(1, 0x3000);
    b.movi(18, 0);
    b.movi(19, 200);
    auto loop = b.label();
    b.muli(3, 18, 7);
    b.andi(3, 3, 7);
    b.movi(4, 6);
    b.div(3, 3, 4);                  // index 0..1
    b.muli(5, 18, 5);
    b.andi(5, 5, 7);
    b.add(3, 3, 5);
    b.movi(4, 6);
    auto wrap = b.futureLabel();
    b.bltu(3, 4, wrap);
    b.movi(3, 0);
    b.bind(wrap);
    b.shli(3, 3, 3);
    b.add(6, 1, 3);
    b.load(7, 6, 0, 8);
    b.callr(28, 7);
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
    b.halt();
    for (Profile p :
         {Profile::kOoo, Profile::kPermissive, Profile::kInOrder}) {
        expectMatchesInterpreter(b.build(), makeProfile(p),
                                 "indirect mix");
    }
}

TEST(CoreEdge, BackToBackFaults)
{
    // Several privileged accesses in a row, each caught by the
    // handler, which counts them and moves on.
    ProgramBuilder b("faults");
    b.segment(0x4000, {1, 2, 3, 4}, MemPerm::kKernel);
    b.movi(10, 0);                   // fault counter (via handler)
    b.movi(18, 0);
    auto next = b.label();
    b.movi(1, 0x4000);
    b.add(1, 1, 18);
    b.load(2, 1, 0, 1);              // always faults
    b.halt();                        // skipped
    auto handler = b.label();
    b.addi(10, 10, 1);
    b.addi(18, 18, 1);
    b.movi(3, 4);
    b.blt(18, 3, next);
    b.halt();
    b.faultHandlerAt(handler);
    const Program p = b.build();

    Interpreter ref(p);
    ref.run(1'000'000);
    for (Profile prof : {Profile::kOoo, Profile::kRestrictedLoads}) {
        auto core = makeCore(p, makeProfile(prof));
        core->run(~std::uint64_t{0}, 10'000'000);
        ASSERT_TRUE(core->halted());
        EXPECT_EQ(core->archReg(10), ref.reg(10));
        EXPECT_EQ(core->archReg(10), 4u);
    }
}

TEST(CoreEdge, WatchdogFreeLongRun)
{
    // A long random-program run across the most restrictive profile
    // must never hit the internal deadlock watchdog.
    RandomProgramParams params;
    params.blocks = 30;
    params.opsPerBlock = 10;
    params.loopIterations = 8;
    const Program p = generateRandomProgram(1234, params);
    auto core = makeCore(p, makeProfile(Profile::kFullProtection));
    core->run(~std::uint64_t{0}, 50'000'000);
    EXPECT_TRUE(core->halted());
}

TEST(CoreEdge, InterpreterOracleAgreesOnMsrPrograms)
{
    ProgramBuilder b("msrprog");
    b.initMsr(0, 7, false);
    b.initMsr(1, 11, false);
    b.movi(18, 0);
    b.movi(19, 20);
    auto loop = b.label();
    b.rdmsr(2, 0);
    b.rdmsr(3, 1);
    b.add(4, 2, 3);
    b.wrmsr(0, 4);
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
    b.halt();
    const Program p = b.build();
    Interpreter ref(p);
    ref.run(1'000'000);
    for (Profile prof : {Profile::kOoo, Profile::kFullProtection,
                         Profile::kInOrder}) {
        auto core = makeCore(p, makeProfile(prof));
        core->run(~std::uint64_t{0}, 10'000'000);
        ASSERT_TRUE(core->halted());
        EXPECT_EQ(core->msr(0), ref.msr(0)) << profileName(prof);
        EXPECT_EQ(core->archReg(4), ref.reg(4)) << profileName(prof);
    }
}

} // namespace
} // namespace nda
