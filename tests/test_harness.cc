/**
 * @file
 * Tests of the evaluation harness: profile construction (Table 2
 * semantics), the SMARTS-style sampling runner, counter windowing,
 * and the table renderer.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "core/core_factory.hh"
#include "harness/profiles.hh"
#include "harness/runner.hh"
#include "harness/csv.hh"
#include "harness/table_printer.hh"
#include "workloads/workload.hh"

namespace nda {
namespace {

TEST(Profiles, TableTwoSemantics)
{
    EXPECT_FALSE(makeProfile(Profile::kOoo).security.anyNda());

    auto perm = makeProfile(Profile::kPermissive).security;
    EXPECT_EQ(perm.propagation, NdaPolicy::kPermissive);
    EXPECT_FALSE(perm.bypassRestriction);

    auto perm_br = makeProfile(Profile::kPermissiveBr).security;
    EXPECT_TRUE(perm_br.bypassRestriction);

    auto strict = makeProfile(Profile::kStrict).security;
    EXPECT_EQ(strict.propagation, NdaPolicy::kStrict);

    auto lr = makeProfile(Profile::kRestrictedLoads).security;
    EXPECT_TRUE(lr.loadRestriction);
    EXPECT_EQ(lr.propagation, NdaPolicy::kNone);

    auto full = makeProfile(Profile::kFullProtection).security;
    EXPECT_EQ(full.propagation, NdaPolicy::kStrict);
    EXPECT_TRUE(full.bypassRestriction);
    EXPECT_TRUE(full.loadRestriction);

    EXPECT_TRUE(makeProfile(Profile::kInOrder).inOrder);
    EXPECT_EQ(makeProfile(Profile::kInvisiSpecSpectre)
                  .security.invisiSpec,
              InvisiSpecMode::kSpectre);
    EXPECT_EQ(
        makeProfile(Profile::kInvisiSpecFuture).security.invisiSpec,
        InvisiSpecMode::kFuture);
}

TEST(Profiles, AllProfilesEnumerated)
{
    EXPECT_EQ(allProfiles().size(),
              static_cast<std::size_t>(Profile::kNumProfiles));
    EXPECT_EQ(ndaProfiles().size(), 8u);
    for (Profile p : allProfiles())
        EXPECT_STRNE(profileName(p), "?");
}

TEST(Profiles, Table3Defaults)
{
    const SimConfig cfg = makeProfile(Profile::kOoo);
    EXPECT_EQ(cfg.core.issueWidth, 8u);
    EXPECT_EQ(cfg.core.robEntries, 192u);
    EXPECT_EQ(cfg.core.lqEntries, 32u);
    EXPECT_EQ(cfg.core.sqEntries, 32u);
    EXPECT_EQ(cfg.core.predictor.btb.entries, 4096u);
    EXPECT_EQ(cfg.core.predictor.rasEntries, 16u);
    EXPECT_EQ(cfg.memory.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.memory.l1d.hitLatency, 4u);
    EXPECT_EQ(cfg.memory.l2.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(cfg.memory.l2.hitLatency, 40u);
    EXPECT_EQ(cfg.memory.dramLatency, 100u);
    const std::string table = configTable(cfg);
    EXPECT_NE(table.find("192 ROB"), std::string::npos);
    EXPECT_NE(table.find("4096 BTB"), std::string::npos);
}

TEST(Runner, WindowExcludesWarmup)
{
    auto w = makeWorkload("compute");
    SampleParams sp;
    sp.warmupInsts = 10'000;
    sp.measureInsts = 20'000;
    const auto s = runWindow(*w, makeProfile(Profile::kOoo), 1, sp);
    EXPECT_EQ(s.instructions, 20'000u);
    EXPECT_GT(s.cycles, 0u);
    EXPECT_GT(s.cpi, 0.0);
}

TEST(Runner, SampledRunsProduceCi)
{
    auto w = makeWorkload("branchy");
    SampleParams sp;
    sp.warmupInsts = 5'000;
    sp.measureInsts = 10'000;
    sp.samples = 3;
    const auto r = runSampled(*w, makeProfile(Profile::kOoo), sp);
    EXPECT_EQ(r.cpiSamples.size(), 3u);
    EXPECT_GT(r.mean.cpi, 0.0);
    EXPECT_GE(r.cpiCi95, 0.0);
    // The stall-fraction breakdown must cover every cycle.
    const double total = r.mean.commitFrac + r.mean.memStallFrac +
                         r.mean.backendStallFrac +
                         r.mean.frontendStallFrac;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Runner, CountersResetBetweenWindows)
{
    auto w = makeWorkload("compute");
    const Program p = w->build(1);
    auto core = makeCore(p, makeProfile(Profile::kOoo));
    core->run(5'000, ~Cycle{0});
    core->resetCounters();
    EXPECT_EQ(core->counters().committedInsts, 0u);
    EXPECT_EQ(core->counters().cycles, 0u);
    core->run(1'000, ~Cycle{0});
    EXPECT_EQ(core->counters().committedInsts, 1'000u);
}

TEST(CsvWriter, QuotesAndWrites)
{
    const std::string path = "/tmp/ndasim_csv_test.csv";
    {
        CsvWriter csv(path);
        ASSERT_TRUE(csv.ok());
        csv.row({"a", "b,c", "d\"e"});
        csv.row({CsvWriter::num(1.5, 2)});
    }
    std::ifstream in(path);
    std::string line1, line2;
    std::getline(in, line1);
    std::getline(in, line2);
    EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
    EXPECT_EQ(line2, "1.50");
}

TEST(TablePrinter, FormatsNumbers)
{
    EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::pct(0.107), "10.7%");
}

TEST(TablePrinter, AsciiBarScales)
{
    EXPECT_EQ(asciiBar(1.0, 1.0, 10).size(), 10u);
    EXPECT_EQ(asciiBar(0.5, 1.0, 10).size(), 5u);
    EXPECT_EQ(asciiBar(0.0, 1.0, 10).size(), 0u);
    EXPECT_EQ(asciiBar(5.0, 1.0, 10).size(), 10u) << "clamped";
}

} // namespace
} // namespace nda
