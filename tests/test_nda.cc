/**
 * @file
 * Tests of NDA's mechanism (paper §5): unsafe marking at dispatch,
 * deferred tag broadcast, the eldest-resolve clearing walk, bypass
 * restriction, load restriction, and the guarantee that NDA never
 * changes architectural results — only timing.
 */

#include <gtest/gtest.h>

#include "core/core_factory.hh"
#include "core/ooo_core.hh"
#include "harness/profiles.hh"
#include "isa/interpreter.hh"
#include "isa/program.hh"

namespace nda {
namespace {

/**
 * A kernel with a slow-resolving branch followed by a dependent
 * load+compute chain: the canonical NDA-restricted pattern.
 */
Program
slowBranchKernel()
{
    ProgramBuilder b("slowbranch");
    b.word(0x1000, 5);               // condition (flushed -> slow)
    b.word(0x2000, 123);             // data the wrong/right path loads
    b.movi(18, 0);
    b.movi(19, 40);
    auto loop = b.label();
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.fence();
    b.load(2, 1, 0, 8);              // 5, slow
    b.movi(3, 100);
    auto skip = b.futureLabel();
    b.bgeu(2, 3, skip);              // not taken (5 < 100), slow resolve
    b.movi(4, 0x2000);
    b.load(5, 4, 0, 8);              // under the unresolved branch
    b.muli(6, 5, 3);                 // dependent (transmit-shaped)
    b.add(7, 6, 2);
    b.bind(skip);
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
    b.halt();
    return b.build();
}

std::uint64_t
cyclesFor(const Program &p, const SecurityConfig &sec)
{
    SimConfig cfg;
    cfg.security = sec;
    OooCore core(p, cfg);
    core.run(~std::uint64_t{0}, 10'000'000);
    EXPECT_TRUE(core.halted());
    return core.cycle();
}

TEST(Nda, PoliciesOnlyChangeTiming)
{
    const Program p = slowBranchKernel();
    Interpreter ref(p);
    ref.run(10'000'000);
    for (Profile prof : allProfiles()) {
        SimConfig cfg = makeProfile(prof);
        auto core = makeCore(p, cfg);
        core->run(~std::uint64_t{0}, 10'000'000);
        ASSERT_TRUE(core->halted()) << cfg.name;
        for (RegId r = 1; r < 20; ++r) {
            EXPECT_EQ(core->archReg(r), ref.reg(r))
                << cfg.name << " r" << int(r);
        }
    }
}

TEST(Nda, StrictSlowerThanPermissiveSlowerThanBaseline)
{
    const Program p = slowBranchKernel();
    SecurityConfig base, perm, strict;
    perm.propagation = NdaPolicy::kPermissive;
    strict.propagation = NdaPolicy::kStrict;
    const auto c_base = cyclesFor(p, base);
    const auto c_perm = cyclesFor(p, perm);
    const auto c_strict = cyclesFor(p, strict);
    EXPECT_GE(c_perm, c_base);
    EXPECT_GE(c_strict, c_perm);
}

TEST(Nda, UnsafeMarkingCounters)
{
    const Program p = slowBranchKernel();
    SimConfig perm, strict;
    perm.security.propagation = NdaPolicy::kPermissive;
    strict.security.propagation = NdaPolicy::kStrict;
    OooCore cp(p, perm);
    cp.run(~std::uint64_t{0}, 10'000'000);
    OooCore cs(p, strict);
    cs.run(~std::uint64_t{0}, 10'000'000);
    EXPECT_GT(cp.counters().unsafeMarked, 0u);
    EXPECT_GT(cs.counters().unsafeMarked, cp.counters().unsafeMarked)
        << "strict marks every op, permissive only load-like ops";
    EXPECT_GT(cp.counters().deferredBroadcasts, 0u)
        << "loads completing under the branch must defer";
}

TEST(Nda, DependentCannotIssueWhileProducerUnsafe)
{
    // Drive tick-by-tick: while the bounds branch is unresolved, the
    // load may complete (exec) but must not broadcast, and its
    // dependent must not issue (paper Fig 2 / Fig 6).
    ProgramBuilder b("micro");
    b.word(0x1000, 5);
    b.word(0x2000, 9);
    b.movi(9, 0x2000);
    b.prefetch(9, 0);                // inner load must be fast
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.fence();
    b.load(2, 1, 0, 8);
    b.movi(3, 100);
    auto skip = b.futureLabel();
    b.bgeu(2, 3, skip);
    b.movi(4, 0x2000);
    b.load(5, 4, 0, 8);              // marked unsafe (permissive)
    b.muli(6, 5, 3);                 // dependent
    b.bind(skip);
    b.halt();
    SimConfig cfg;
    cfg.security.propagation = NdaPolicy::kPermissive;
    OooCore core(b.build(), cfg);

    bool saw_deferred_window = false;
    while (!core.halted() && core.cycle() < 100000) {
        core.tick();
        for (const auto &inst : core.rob()) {
            if (inst->uop.op == Opcode::kLoad &&
                inst->pc >= 9 && inst->executed && inst->isUnsafe()) {
                EXPECT_FALSE(inst->broadcasted);
                saw_deferred_window = true;
            }
            if (inst->uop.op == Opcode::kMulImm) {
                EXPECT_FALSE(inst->issued && inst->isUnsafe());
            }
        }
    }
    EXPECT_TRUE(saw_deferred_window)
        << "the unsafe load should complete before the branch resolves";
}

TEST(Nda, PermissiveLeavesNonLoadsSafe)
{
    // Under permissive propagation, an ALU op after an unresolved
    // branch broadcasts on completion (paper §5.2, Fig 6 column B).
    ProgramBuilder b("alusafe");
    b.word(0x1000, 5);
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.fence();
    b.load(2, 1, 0, 8);
    b.movi(3, 100);
    auto skip = b.futureLabel();
    b.bgeu(2, 3, skip);
    b.muli(6, 3, 3);                 // non-load: safe under permissive
    b.addi(7, 6, 1);                 // its dependent
    b.bind(skip);
    b.halt();
    SimConfig cfg;
    cfg.security.propagation = NdaPolicy::kPermissive;
    OooCore core(b.build(), cfg);
    bool dependent_ran_under_branch = false;
    while (!core.halted() && core.cycle() < 100000) {
        core.tick();
        for (const auto &inst : core.rob()) {
            if (inst->uop.op == Opcode::kAddImm && inst->executed) {
                // The branch (pc 4) may still be unresolved.
                for (const auto &other : core.rob()) {
                    if (other->uop.op == Opcode::kBgeu &&
                        !other->executed) {
                        dependent_ran_under_branch = true;
                    }
                }
            }
        }
    }
    EXPECT_TRUE(dependent_ran_under_branch);
}

TEST(Nda, BypassRestrictionDefersUntilStoreResolves)
{
    // A load bypassing an unresolved store is unsafe until the store
    // resolves (paper §5.2).
    ProgramBuilder b("br");
    b.word(0x1000, 0x3000);          // pointer (flushed)
    b.word(0x3000, 7);
    b.word(0x2000, 42);
    b.movi(9, 0x2000);
    b.prefetch(9, 0);                // bypassing load must be fast
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.fence();
    b.movi(2, 9);
    b.load(3, 1, 0, 8);              // slow store address
    b.store(3, 0, 2, 8);             // address unresolved for ~140
    b.movi(4, 0x2000);
    b.load(5, 4, 0, 8);              // bypasses the store (no alias)
    b.addi(6, 5, 1);                 // dependent
    b.halt();
    SimConfig cfg;
    cfg.security.bypassRestriction = true;
    OooCore core(b.build(), cfg);
    bool saw_bypass_unsafe = false;
    while (!core.halted() && core.cycle() < 100000) {
        core.tick();
        for (const auto &inst : core.rob()) {
            if (inst->pc == 9 && inst->executed && inst->unsafeBypass) {
                saw_bypass_unsafe = true;
                EXPECT_FALSE(inst->broadcasted);
            }
        }
    }
    EXPECT_TRUE(saw_bypass_unsafe);
    EXPECT_EQ(core.archReg(6), 43u);
}

TEST(Nda, LoadRestrictionWakesOnlyAtHead)
{
    // Under load restriction, a completed load must never broadcast
    // while anything older is unretired (paper §5.3).
    ProgramBuilder b("lr");
    b.word(0x2000, 5);
    b.zeroSegment(0x1000, 64);
    b.movi(9, 0x2000);
    b.prefetch(9, 0);                // the early load must hit
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.load(2, 1, 0, 8);              // slow head blocker
    b.movi(4, 0x2000);
    b.load(5, 4, 0, 8);              // completes early (L1-ish)
    b.addi(6, 5, 1);                 // dependent
    b.halt();
    SimConfig cfg;
    cfg.security.loadRestriction = true;
    OooCore core(b.build(), cfg);
    bool saw_completed_waiting = false;
    while (!core.halted() && core.cycle() < 100000) {
        core.tick();
        const auto &rob = core.rob();
        for (std::size_t i = 1; i < rob.size(); ++i) { // skip head
            const auto &inst = rob[i];
            if (inst->pc == 6 && inst->executed) {
                EXPECT_FALSE(inst->broadcasted)
                    << "non-head load must not have broadcast";
                saw_completed_waiting = true;
            }
        }
    }
    EXPECT_TRUE(saw_completed_waiting);
    EXPECT_EQ(core.archReg(6), 6u);
}

TEST(Nda, ExtraBroadcastDelayMonotonicCpi)
{
    // Fig 9e: adding NDA-logic latency may only slow execution.
    const Program p = slowBranchKernel();
    std::uint64_t prev = 0;
    for (unsigned delay : {0u, 1u, 2u}) {
        SecurityConfig sec;
        sec.propagation = NdaPolicy::kStrict;
        sec.extraBroadcastDelay = delay;
        const auto c = cyclesFor(p, sec);
        EXPECT_GE(c, prev) << "delay " << delay;
        prev = c;
    }
}

TEST(Nda, FullProtectionCombinesMechanisms)
{
    const Program p = slowBranchKernel();
    SecurityConfig strict_br, full;
    strict_br.propagation = NdaPolicy::kStrict;
    strict_br.bypassRestriction = true;
    full = strict_br;
    full.loadRestriction = true;
    EXPECT_GE(cyclesFor(p, full), cyclesFor(p, strict_br));
}

TEST(Nda, SquashClearsUnsafeBacklog)
{
    // After a mispredict squash, no stale unsafe instruction may
    // linger and deadlock the pipeline: the program must finish.
    ProgramBuilder b("squashclear");
    b.word(0x1000, 1);
    b.movi(18, 0);
    b.movi(19, 30);
    auto loop = b.label();
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.fence();
    b.load(2, 1, 0, 8);
    b.movi(3, 0);
    auto skip = b.futureLabel();
    b.bne(2, 3, skip);               // always taken; mistrained start
    b.movi(4, 0x1000);
    b.load(5, 4, 0, 8);
    b.muli(6, 5, 3);
    b.bind(skip);
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
    b.halt();
    SecurityConfig strict;
    strict.propagation = NdaPolicy::kStrict;
    strict.bypassRestriction = true;
    strict.loadRestriction = true;
    EXPECT_GT(cyclesFor(b.build(), strict), 0u);
}

} // namespace
} // namespace nda
