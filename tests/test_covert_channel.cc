/**
 * @file
 * Tests of the covert-channel building blocks shared by the attack
 * PoCs: probe-array flushing, the timing recovery loop, the transmit
 * gadget, and the history scrambler.
 */

#include <gtest/gtest.h>

#include "attacks/covert_channel.hh"
#include "core/ooo_core.hh"
#include "harness/profiles.hh"
#include "isa/interpreter.hh"

namespace nda {
namespace {

using namespace attack_layout;

TEST(CovertChannel, ProbeFlushEvictsAllLines)
{
    ProgramBuilder b("flush");
    declareChannelSegments(b);
    // Warm a few probe lines first.
    b.movi(1, static_cast<std::int64_t>(kProbeBase));
    b.prefetch(1, 0);
    b.prefetch(1, 42 * kProbeStride);
    b.prefetch(1, 255 * kProbeStride);
    emitProbeFlush(b);
    b.halt();
    OooCore core(b.build(), makeProfile(Profile::kOoo));
    core.run(~std::uint64_t{0}, 100000);
    ASSERT_TRUE(core.halted());
    for (int g : {0, 42, 255}) {
        EXPECT_FALSE(core.hierarchy().l1d().probe(
            kProbeBase + static_cast<Addr>(g) * kProbeStride))
            << g;
        EXPECT_FALSE(core.hierarchy().l2().probe(
            kProbeBase + static_cast<Addr>(g) * kProbeStride))
            << g;
    }
}

TEST(CovertChannel, RecoverLoopDistinguishesWarmLine)
{
    // Warm exactly one probe line; the recovery loop must time it
    // far below the cold lines.
    ProgramBuilder b("recover");
    declareChannelSegments(b);
    emitProbeFlush(b);
    b.movi(1, static_cast<std::int64_t>(kProbeBase));
    b.prefetch(1, 99 * kProbeStride);
    b.fence();
    emitCacheRecoverLoop(b);
    b.halt();
    OooCore core(b.build(), makeProfile(Profile::kOoo));
    core.run(~std::uint64_t{0}, 10'000'000);
    ASSERT_TRUE(core.halted());
    const auto t_warm = core.mem().read(kResultsBase + 99 * 8, 8);
    const auto t_cold = core.mem().read(kResultsBase + 7 * 8, 8);
    EXPECT_LT(t_warm + 50, t_cold)
        << "warm " << t_warm << " vs cold " << t_cold;
}

TEST(CovertChannel, TransmitTouchesTheRightLine)
{
    ProgramBuilder b("transmit");
    declareChannelSegments(b);
    emitProbeFlush(b);
    b.movi(14, 123);                 // "secret"
    emitCacheTransmit(b, 14);
    b.halt();
    OooCore core(b.build(), makeProfile(Profile::kOoo));
    core.run(~std::uint64_t{0}, 100000);
    ASSERT_TRUE(core.halted());
    EXPECT_TRUE(core.hierarchy().l1d().probe(
        kProbeBase + 123u * kProbeStride));
    EXPECT_FALSE(core.hierarchy().l1d().probe(
        kProbeBase + 124u * kProbeStride));
}

TEST(CovertChannel, ScrambleEmitsDataDependentBranches)
{
    ProgramBuilder b("scramble");
    b.movi(25, 0xABC);
    emitHistoryScramble(b, 25);
    b.halt();
    const Program p = b.build();
    int branches = 0;
    for (const MicroOp &u : p.code)
        branches += u.traits().isCondBranch;
    EXPECT_EQ(branches, 12);

    // Architecturally a no-op beyond scratch registers.
    Interpreter ref(p);
    ref.run(1000);
    EXPECT_TRUE(ref.halted());

    // Different salts produce different dynamic branch outcomes:
    // count executed instructions (taken branches skip a nop).
    ProgramBuilder b2("scramble2");
    b2.movi(25, 0x123);
    emitHistoryScramble(b2, 25);
    b2.halt();
    Interpreter ref2(b2.build());
    ref2.run(1000);
    EXPECT_NE(ref.instCount(), ref2.instCount());
}

TEST(CovertChannel, LayoutConstantsDisjoint)
{
    // The shared memory map must not overlap (a layout bug would
    // silently corrupt attack results).
    struct Span {
        Addr base;
        Addr len;
    };
    const Span spans[] = {
        {kProbeBase, 256 * kProbeStride},
        {kResultsBase, 256 * 8},
        {kVictimBase, 0x1000},
        {kKernelSecret, 64},
        {kTargetTable, 256 * 8},
    };
    for (std::size_t i = 0; i < std::size(spans); ++i) {
        for (std::size_t j = i + 1; j < std::size(spans); ++j) {
            const bool overlap =
                spans[i].base < spans[j].base + spans[j].len &&
                spans[j].base < spans[i].base + spans[i].len;
            EXPECT_FALSE(overlap) << i << " vs " << j;
        }
    }
}

} // namespace
} // namespace nda
