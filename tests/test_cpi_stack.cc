/**
 * @file
 * Tests of the causal CPI-stack profiler (obs/cpi_stack.hh,
 * obs/hotspot_profiler.hh) and its core/harness integration: the
 * exact slot-decomposition identity on every profile x workload, the
 * NDA defer-bucket causality, detached neutrality (attribution never
 * perturbs the simulation), hotspot ranking/rendering, and the
 * exhaustiveness of the cause-name tables.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/ooo_core.hh"
#include "core/perf_counters.hh"
#include "harness/profiles.hh"
#include "harness/runner.hh"
#include "obs/cpi_stack.hh"
#include "obs/stats_registry.hh"
#include "workloads/workload.hh"

namespace nda {
namespace {

// ---------------------------------------------------------------------
// Cause-name tables: exhaustive, distinct, never the "?" fallback
// ---------------------------------------------------------------------

TEST(StallCauseNames, ExhaustiveAndDistinct)
{
    std::set<std::string> display;
    std::set<std::string> stat;
    for (int c = 0; c < kNumStallCauses; ++c) {
        const auto cause = static_cast<StallCause>(c);
        const char *d = stallCauseName(cause);
        const char *s = stallCauseStatName(cause);
        ASSERT_NE(d, nullptr);
        ASSERT_NE(s, nullptr);
        EXPECT_STRNE(d, "?") << "display name missing for cause " << c;
        EXPECT_STRNE(s, "?") << "stat name missing for cause " << c;
        EXPECT_TRUE(display.insert(d).second)
            << "duplicate display name '" << d << "'";
        EXPECT_TRUE(stat.insert(s).second)
            << "duplicate stat name '" << s << "'";
        // Stat names are schema leaves: snake_case only.
        for (const char *p = s; *p; ++p)
            EXPECT_TRUE((*p >= 'a' && *p <= 'z') || *p == '_')
                << "stat name '" << s << "' is not snake_case";
    }
    EXPECT_EQ(display.size(), static_cast<std::size_t>(kNumStallCauses));
    // The NDA split by producer class is the paper's policy axis.
    EXPECT_EQ(display.count("nda-defer-load"), 1u);
    EXPECT_EQ(display.count("nda-defer-alu"), 1u);
    EXPECT_EQ(display.count("nda-defer-control"), 1u);
}

TEST(SquashCauseNames, ExhaustiveAndDistinct)
{
    std::set<std::string> names;
    const int n = static_cast<int>(SquashCause::kNumCauses);
    for (int c = 0; c < n; ++c) {
        const char *name = squashCauseName(static_cast<SquashCause>(c));
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "?") << "name missing for squash cause " << c;
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate squash cause name '" << name << "'";
    }
    EXPECT_EQ(names.size(), static_cast<std::size_t>(n));
    // Every squash cause has a slot bucket in the CPI stack (kNone is
    // the no-squash sentinel, not a slot cause).
    EXPECT_EQ(names.count("branch-mispredict"), 1u);
    EXPECT_EQ(names.count("mem-order-violation"), 1u);
    EXPECT_EQ(names.count("fault"), 1u);
    EXPECT_EQ(names.count("serialize"), 1u);
}

// ---------------------------------------------------------------------
// Profiler unit behavior
// ---------------------------------------------------------------------

TEST(CpiStackProfiler, SlotAccountingAndIdentity)
{
    CpiStackProfiler cpi(4);
    EXPECT_EQ(cpi.width(), 4u);
    EXPECT_EQ(cpi.totalSlots(), 0u);
    EXPECT_EQ(cpi.accountedSlots(), 0u);

    cpi.onCycle();
    cpi.addSlots(StallCause::kCommit, 2, 0x10);
    cpi.addSlots(StallCause::kNdaDeferLoad, 1, 0x20);
    cpi.addSlots(StallCause::kFrontend, 1, 0x30);
    cpi.onCycle();
    cpi.addSlots(StallCause::kMemLatency, 4, 0x20);

    EXPECT_EQ(cpi.cycles(), 2u);
    EXPECT_EQ(cpi.totalSlots(), 8u);
    EXPECT_EQ(cpi.accountedSlots(), 8u);
    EXPECT_EQ(cpi.slots(StallCause::kCommit), 2u);
    EXPECT_EQ(cpi.slots(StallCause::kNdaDeferLoad), 1u);
    EXPECT_EQ(cpi.slots(StallCause::kMemLatency), 4u);
    EXPECT_DOUBLE_EQ(cpi.slotFraction(StallCause::kMemLatency), 0.5);
    EXPECT_EQ(cpi.hotspots().size(), 3u);

    cpi.reset();
    EXPECT_EQ(cpi.cycles(), 0u);
    EXPECT_EQ(cpi.accountedSlots(), 0u);
    EXPECT_TRUE(cpi.hotspots().empty());
    EXPECT_DOUBLE_EQ(cpi.slotFraction(StallCause::kMemLatency), 0.0);
}

TEST(CpiStackProfiler, RegisterStatsSchema)
{
    CpiStackProfiler cpi(8);
    StatsRegistry reg;
    cpi.registerStats(reg, "core.cpi_stack");
    const std::vector<std::string> names = reg.names();
    // width, cycles, total_slots, unaccounted + one slot counter per
    // cause.
    EXPECT_EQ(names.size(),
              4u + static_cast<std::size_t>(kNumStallCauses));
    const std::set<std::string> set(names.begin(), names.end());
    EXPECT_EQ(set.count("core.cpi_stack.width"), 1u);
    EXPECT_EQ(set.count("core.cpi_stack.unaccounted"), 1u);
    for (int c = 0; c < kNumStallCauses; ++c) {
        const std::string leaf =
            stallCauseStatName(static_cast<StallCause>(c));
        EXPECT_EQ(set.count("core.cpi_stack.slots." + leaf), 1u)
            << "missing slot counter for '" << leaf << "'";
    }
}

TEST(HotspotProfiler, RankingAndMerge)
{
    HotspotProfiler hp;
    hp.record(0x30, StallCause::kMemLatency, 10);
    hp.record(0x10, StallCause::kNdaDeferLoad, 10);
    hp.record(0x20, StallCause::kCommit, 100); // productive, not lost
    hp.record(0x20, StallCause::kFrontend, 3);

    const auto top = hp.topN(8);
    ASSERT_EQ(top.size(), 3u);
    // 0x10 and 0x30 tie on lost slots: PC ascending breaks the tie.
    EXPECT_EQ(top[0].pc, 0x10u);
    EXPECT_EQ(top[1].pc, 0x30u);
    EXPECT_EQ(top[2].pc, 0x20u);
    EXPECT_EQ(top[2].lostSlots(), 3u);
    EXPECT_EQ(top[2].totalSlots(), 103u);
    EXPECT_EQ(hp.topN(1).size(), 1u);

    HotspotProfiler other;
    other.record(0x30, StallCause::kMemLatency, 5);
    other.record(0x40, StallCause::kIqFull, 1);
    hp.merge(other);
    const auto merged = hp.topN(8);
    ASSERT_EQ(merged.size(), 4u);
    EXPECT_EQ(merged[0].pc, 0x30u);
    EXPECT_EQ(merged[0].lostSlots(), 15u);

    // mergeEntry round-trips a ranked entry (cross-window reduce).
    HotspotProfiler folded;
    for (const HotspotEntry &e : merged)
        folded.mergeEntry(e);
    EXPECT_EQ(folded.topN(8), merged);
}

TEST(HotspotProfiler, CollapsedRenderDeterministic)
{
    HotspotProfiler hp;
    hp.record(0x2a, StallCause::kNdaDeferLoad, 123);
    hp.record(0x2a, StallCause::kCommit, 7);
    hp.record(0x05, StallCause::kMemLatency, 9);

    const std::string folded = hp.renderCollapsed("mixed;Strict");
    EXPECT_NE(folded.find("mixed;Strict;pc_0x5;mem-latency 9\n"),
              std::string::npos);
    EXPECT_NE(folded.find("mixed;Strict;pc_0x2a;nda-defer-load 123\n"),
              std::string::npos);
    // Deterministic: same table renders byte-identically.
    EXPECT_EQ(folded, hp.renderCollapsed("mixed;Strict"));
    // Sorted by pc: 0x5 precedes 0x2a.
    EXPECT_LT(folded.find("pc_0x5;"), folded.find("pc_0x2a;"));
}

// ---------------------------------------------------------------------
// Core integration: the slot identity, causality, and neutrality
// ---------------------------------------------------------------------

WindowStats
profiledWindow(const char *workload_name, Profile profile,
               bool cpi_stack, std::uint64_t measure = 4000)
{
    const auto workload = makeWorkload(workload_name);
    SampleParams p;
    p.warmupInsts = 1000;
    p.measureInsts = measure;
    p.samples = 1;
    p.cpiStack = cpi_stack;
    return runWindow(*workload, makeProfile(profile), 1, p);
}

std::uint64_t
accounted(const WindowStats &w)
{
    std::uint64_t sum = 0;
    for (const std::uint64_t s : w.slotStack)
        sum += s;
    return sum;
}

TEST(CpiStackIdentity, ExactAcrossProfilesAndWorkloads)
{
    // A small grid smoke over the interesting mechanism space: the
    // insecure baseline, taint propagation, the two restriction
    // mechanisms, InvisiSpec, and the in-order lower bound.
    const Profile profiles[] = {
        Profile::kOoo,        Profile::kStrict,
        Profile::kStrictBr,   Profile::kRestrictedLoads,
        Profile::kFullProtection, Profile::kInvisiSpecFuture,
        Profile::kInOrder,
    };
    const char *workloads[] = {"ptrchase", "branchy", "mixed"};
    for (const Profile p : profiles) {
        for (const char *wl : workloads) {
            const WindowStats w = profiledWindow(wl, p, true);
            ASSERT_EQ(w.slotStack.size(),
                      static_cast<std::size_t>(kNumStallCauses))
                << wl << " x " << profileName(p);
            ASSERT_GT(w.slotWidth, 0u);
            ASSERT_GT(w.cycles, 0u);
            EXPECT_EQ(accounted(w),
                      static_cast<std::uint64_t>(w.slotWidth) *
                          w.cycles)
                << "slot identity broken on " << wl << " x "
                << profileName(p);
        }
    }
}

TEST(CpiStackIdentity, SurvivesAggregation)
{
    // aggregateWindows sums slot stacks and cycles, so the identity
    // must hold on the reduced cell exactly as on each window.
    const auto workload = makeWorkload("hashjoin");
    SampleParams p;
    p.warmupInsts = 1000;
    p.measureInsts = 3000;
    p.samples = 3;
    p.cpiStack = true;
    const RunResult r =
        runSampled(*workload, makeProfile(Profile::kStrict), p);
    ASSERT_EQ(r.mean.slotStack.size(),
              static_cast<std::size_t>(kNumStallCauses));
    EXPECT_EQ(accounted(r.mean),
              static_cast<std::uint64_t>(r.mean.slotWidth) *
                  r.mean.cycles);
    EXPECT_FALSE(r.mean.hotspots.empty());
    EXPECT_LE(r.mean.hotspots.size(), kHotspotTopN);
}

TEST(CpiStackIdentity, HoldsPerThreadAndPooledUnderSmt)
{
    // With two hardware threads each thread's view of the commit
    // slots must close the same width x cycles identity as the pooled
    // stack: slots another thread retired into are charged to
    // kSmtContention, everything else to the thread's own causes.
    ProgramBuilder b("smt-cpi");
    b.zeroSegment(0x1000, 64);
    b.movi(1, 0);
    b.movi(2, 0);
    auto loop = b.label();
    b.addi(2, 2, 1);
    b.add(1, 1, 2);
    b.movi(3, 0x1000);
    b.load(4, 3, 0, 8);   // shared-line traffic between the contexts
    b.add(1, 1, 4);
    b.movi(3, 2000);
    b.blt(2, 3, loop);
    b.halt();
    const Program prog = b.build(); // homogeneous co-run

    SimConfig cfg;
    cfg.core.smtThreads = 2;
    OooCore core(prog, cfg);
    CpiStackProfiler pooled(cfg.core.commitWidth);
    CpiStackProfiler t0(cfg.core.commitWidth);
    CpiStackProfiler t1(cfg.core.commitWidth);
    core.attachCpiStack(&pooled);
    core.attachThreadCpiStack(0, &t0);
    core.attachThreadCpiStack(1, &t1);
    core.run(~std::uint64_t{0}, 400'000);
    ASSERT_TRUE(core.halted());

    // Every profiler saw every cycle, and every view closes exactly.
    EXPECT_GT(pooled.cycles(), 0u);
    EXPECT_EQ(t0.cycles(), pooled.cycles());
    EXPECT_EQ(t1.cycles(), pooled.cycles());
    EXPECT_EQ(pooled.accountedSlots(), pooled.totalSlots());
    EXPECT_EQ(t0.accountedSlots(), t0.totalSlots());
    EXPECT_EQ(t1.accountedSlots(), t1.totalSlots());

    // Co-residency is visible: each thread lost commit bandwidth to
    // the other, and only the per-thread views may say so.
    EXPECT_GT(t0.slots(StallCause::kSmtContention), 0u);
    EXPECT_GT(t1.slots(StallCause::kSmtContention), 0u);
    EXPECT_EQ(pooled.slots(StallCause::kSmtContention), 0u);
}

TEST(CpiStackCausality, DeferBucketsTrackLoadRestriction)
{
    // The paper's load-restriction signature: deferred tag broadcast
    // of load producers. The bucket must light up under Restricted
    // Loads and stay dark on the insecure baseline.
    const WindowStats base =
        profiledWindow("ptrchase", Profile::kOoo, true);
    const WindowStats lr =
        profiledWindow("ptrchase", Profile::kRestrictedLoads, true);

    const auto defer_load =
        static_cast<int>(StallCause::kNdaDeferLoad);
    EXPECT_EQ(base.slotStack[defer_load], 0u);
    EXPECT_EQ(base.slotStack[static_cast<int>(
                  StallCause::kNdaDeferAlu)],
              0u);
    EXPECT_EQ(base.slotStack[static_cast<int>(
                  StallCause::kNdaDeferControl)],
              0u);
    EXPECT_GT(lr.slotStack[defer_load], 0u)
        << "load restriction produced no nda-defer-load slots";

    // And the hotspot table must carry the same signal: some PC loses
    // slots to the defer bucket.
    std::uint64_t hotspot_defer = 0;
    for (const HotspotEntry &e : lr.hotspots)
        hotspot_defer += e.slots[defer_load];
    EXPECT_GT(hotspot_defer, 0u);
}

TEST(CpiStackDelta, ExplainsNdaOverheadExactly)
{
    // The acceptance bar: the NDA-vs-baseline CPI delta decomposes
    // term by term with no unaccounted residue. With the identity
    // exact on both sides, the per-cause contribution deltas must sum
    // to the CPI delta up to float rounding only (<< 1%).
    const WindowStats base =
        profiledWindow("ptrchase", Profile::kOoo, true);
    const WindowStats nda =
        profiledWindow("ptrchase", Profile::kFullProtection, true);
    ASSERT_GT(base.instructions, 0u);
    ASSERT_GT(nda.instructions, 0u);

    const auto contrib = [](const WindowStats &w, int c) {
        return static_cast<double>(w.slotStack[c]) /
               (static_cast<double>(w.slotWidth) *
                static_cast<double>(w.instructions));
    };
    double delta_sum = 0.0;
    for (int c = 0; c < kNumStallCauses; ++c)
        delta_sum += contrib(nda, c) - contrib(base, c);
    const double cpi_delta = nda.cpi - base.cpi;
    EXPECT_GT(cpi_delta, 0.0)
        << "full protection should cost CPI on pointer chasing";
    EXPECT_NEAR(delta_sum, cpi_delta, 1e-9 + 0.001 * cpi_delta);
}

TEST(CpiStackNeutrality, DetachedRunIsBitIdentical)
{
    // The profiler must be a pure observer: the same window with and
    // without attribution retires the same instructions in the same
    // number of cycles (KIPS aside, simulated results are identical).
    for (const Profile p :
         {Profile::kOoo, Profile::kFullProtection, Profile::kInOrder}) {
        const WindowStats with = profiledWindow("mixed", p, true);
        const WindowStats without = profiledWindow("mixed", p, false);
        EXPECT_EQ(with.cycles, without.cycles) << profileName(p);
        EXPECT_EQ(with.instructions, without.instructions)
            << profileName(p);
        EXPECT_DOUBLE_EQ(with.cpi, without.cpi) << profileName(p);
        // Detached windows carry no stack at all.
        EXPECT_TRUE(without.slotStack.empty());
        EXPECT_TRUE(without.hotspots.empty());
        EXPECT_EQ(without.slotWidth, 0u);
    }
}

TEST(CpiStackInOrder, WidthOneIdentity)
{
    const WindowStats w =
        profiledWindow("stream", Profile::kInOrder, true);
    EXPECT_EQ(w.slotWidth, 1u);
    EXPECT_EQ(accounted(w), w.cycles);
    // The blocking core commits exactly one instruction per kCommit
    // slot.
    EXPECT_EQ(w.slotStack[static_cast<int>(StallCause::kCommit)],
              w.instructions);
    // No speculation: every squash/NDA/capacity bucket stays empty.
    for (const StallCause c :
         {StallCause::kSquashBranch, StallCause::kSquashMemOrder,
          StallCause::kNdaDeferLoad, StallCause::kNdaDeferAlu,
          StallCause::kNdaDeferControl, StallCause::kIqFull,
          StallCause::kLsqFull, StallCause::kRobFull}) {
        EXPECT_EQ(w.slotStack[static_cast<int>(c)], 0u)
            << stallCauseName(c);
    }
}

TEST(CpiStackSquash, BranchyWorkloadChargesSquashSlots)
{
    // The speculative OoO core mispredicts on branchy: refetch slots
    // must attribute to the squash-branch bucket.
    const WindowStats w =
        profiledWindow("branchy", Profile::kOoo, true);
    EXPECT_GT(
        w.slotStack[static_cast<int>(StallCause::kSquashBranch)], 0u);
}

} // namespace
} // namespace nda
