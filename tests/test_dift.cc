/**
 * @file
 * Unit tests of the DIFT leakage oracle: taint propagation through
 * the architectural cores and the OoO pipeline, the pending-event
 * commit/squash protocol, and the oracle's agreement with the paper's
 * Table 2 on the separating (attack, profile) cells. A run with no
 * declared secrets must never report a leak on any profile.
 */

#include <gtest/gtest.h>

#include "attacks/attack_registry.hh"
#include "attacks/attacks.hh"
#include "core/core_factory.hh"
#include "core/dyn_inst.hh"
#include "core/ooo_core.hh"
#include "dift/taint_engine.hh"
#include "harness/profiles.hh"
#include "isa/interpreter.hh"
#include "isa/program.hh"

namespace nda {
namespace {

/** One secret byte at `addr`; returns the engine ready to attach. */
SecretMap
oneSecretAt(Addr addr)
{
    SecretMap secrets;
    secrets.addMemRange(addr, 1, "test-secret");
    return secrets;
}

TEST(DiftArch, AluMergesSourceTaint)
{
    ProgramBuilder b("alu-taint");
    b.segment(0x1000, {0x2A});
    b.movi(1, 0x1000);
    b.load(2, 1, 0, 1);    // r2 <- secret
    b.movi(3, 5);          // r3 untainted
    b.add(4, 2, 3);        // r4 inherits r2's taint
    b.add(5, 3, 3);        // r5 stays clean
    b.movi(2, 0);          // overwrite clears r2's taint
    b.halt();

    TaintEngine dift(oneSecretAt(0x1000));
    Interpreter it(b.build());
    it.attachDift(&dift);
    it.run(100);
    ASSERT_TRUE(it.halted());

    EXPECT_NE(dift.archRegTaint(4), 0u);
    EXPECT_EQ(dift.archRegTaint(5), 0u);
    EXPECT_EQ(dift.archRegTaint(2), 0u) << "movi must clear taint";
    EXPECT_FALSE(dift.report().leaked())
        << "architectural execution has no wrong path to leak from";
}

TEST(DiftArch, LoadStoreRoundTripCarriesTaint)
{
    ProgramBuilder b("mem-taint");
    b.segment(0x1000, {0x2A});
    b.zeroSegment(0x2000, 8);
    b.movi(1, 0x1000);
    b.movi(2, 0x2000);
    b.load(3, 1, 0, 1);    // r3 <- secret
    b.store(2, 0, 3, 1);   // [0x2000] <- secret (taints the byte)
    b.load(4, 2, 0, 1);    // r4 <- tainted copy
    b.movi(5, 0);
    b.store(2, 0, 5, 1);   // scrub: untainted store clears the byte
    b.halt();

    TaintEngine dift(oneSecretAt(0x1000));
    Interpreter it(b.build());
    it.attachDift(&dift);
    it.run(100);
    ASSERT_TRUE(it.halted());

    EXPECT_NE(dift.archRegTaint(4), 0u);
    EXPECT_EQ(dift.memTaint(0x2000, 1), 0u)
        << "untainted overwrite must scrub memory taint";
    EXPECT_NE(dift.memTaint(0x1000, 1), 0u)
        << "the declared secret home stays tainted";
}

TEST(DiftArch, TaintedAddressTaintsLoadedValue)
{
    // Loading public data through a secret-derived pointer makes the
    // result secret-dependent (the selection leaks): the implicit
    // flow the BTB channel transmits.
    ProgramBuilder b("addr-taint");
    b.segment(0x1000, {0x00});     // secret byte, value 0
    b.zeroSegment(0x2000, 64);     // public table
    b.movi(1, 0x1000);
    b.load(2, 1, 0, 1);            // r2 <- secret (value 0)
    b.movi(3, 0x2000);
    b.add(4, 3, 2);                // r4 = table + secret
    b.load(5, 4, 0, 1);            // r5 <- public byte, tainted addr
    b.halt();

    TaintEngine dift(oneSecretAt(0x1000));
    Interpreter it(b.build());
    it.attachDift(&dift);
    it.run(100);
    ASSERT_TRUE(it.halted());

    EXPECT_NE(dift.archRegTaint(5), 0u)
        << "address taint must propagate into the loaded value";
}

TEST(DiftOoo, StoreToLoadForwardCarriesTaint)
{
    ProgramBuilder b("fwd-taint");
    b.segment(0x1000, {0x2A});
    b.zeroSegment(0x2000, 8);
    b.movi(1, 0x1000);
    b.movi(2, 0x2000);
    b.load(3, 1, 0, 1);    // r3 <- secret
    b.store(2, 0, 3, 1);   // in-flight tainted store
    b.load(4, 2, 0, 1);    // must forward from the SQ
    b.halt();

    TaintEngine dift(oneSecretAt(0x1000));
    const Program p = b.build();
    OooCore core(p, SimConfig{});
    core.attachDift(&dift);
    core.run(~std::uint64_t{0}, 200000);
    ASSERT_TRUE(core.halted());

    EXPECT_NE(core.archRegTaint(3), 0u);
    EXPECT_NE(core.archRegTaint(4), 0u)
        << "SQ forwarding must carry the store data's taint";
    EXPECT_NE(dift.memTaint(0x2000, 1), 0u)
        << "the committed store must taint memory";
    EXPECT_FALSE(dift.report().leaked())
        << "correct-path execution must not raise leak events";
}

TEST(DiftEngine, SquashClearsTaintButKeepsLeakRecords)
{
    SecretMap secrets;
    const unsigned bit = secrets.addMemRange(0x1000, 1, "s");
    TaintEngine dift(secrets);
    dift.bindPhysRegs(16);
    const TaintWord t = TaintWord{1} << bit;

    // A wrong-path load wrote phys reg 3 and filled a cache line.
    dift.setRegTaint(3, t);
    dift.noteAccess(t, /*pc=*/6, /*cycle=*/100);
    dift.recordPending(/*seq=*/7, /*pc=*/10, LeakChannel::kDCache,
                       "fill", /*target=*/0x2000, /*cycle=*/110, t);
    EXPECT_EQ(dift.pendingCount(), 1u);
    EXPECT_FALSE(dift.report().leaked()) << "pending is not yet a leak";

    DynInst inst;
    inst.seq = 7;
    inst.dest = 3;
    dift.onSquash(inst);

    EXPECT_EQ(dift.regTaint(3), 0u)
        << "squash must clear the freed register's in-flight taint";
    EXPECT_EQ(dift.pendingCount(), 0u);
    ASSERT_TRUE(dift.report().leaked())
        << "the persistent-structure mutation survives the squash";
    const LeakEvent &ev = dift.report().first();
    EXPECT_EQ(ev.channel, LeakChannel::kDCache);
    EXPECT_EQ(ev.transmitPc, 10u);
    EXPECT_EQ(ev.accessPc, 6u);
    EXPECT_EQ(ev.transmitCycle, 110u);
    EXPECT_EQ(ev.label, "s");

    // A committed instruction's pending events are dropped instead.
    dift.recordPending(/*seq=*/8, /*pc=*/12, LeakChannel::kBtb,
                       "update", 0x3000, 120, t);
    dift.onCommit(8);
    EXPECT_EQ(dift.pendingCount(), 0u);
    EXPECT_EQ(dift.report().count(), 1u)
        << "commit must not add (or remove) leak records";
}

TEST(DiftEngine, UntaintedRunHasZeroLeaksOnEveryProfile)
{
    // No declared secrets: the oracle must stay silent on every
    // profile even though the attack program's wrong path runs.
    const Program p = SpectreV1Cache().build(42);
    for (int i = 0;
         i < static_cast<int>(Profile::kNumProfiles); ++i) {
        const SimConfig cfg =
            makeProfile(static_cast<Profile>(i));
        TaintEngine dift((SecretMap()));
        EXPECT_FALSE(dift.enabled());
        auto core = makeCore(p, cfg);
        core->attachDift(&dift);
        core->run(~std::uint64_t{0}, 40'000'000);
        EXPECT_TRUE(core->halted()) << cfg.name;
        EXPECT_FALSE(dift.report().leaked()) << cfg.name;
        EXPECT_EQ(dift.pendingCount(), 0u) << cfg.name;
    }
}

TEST(DiftOracle, LeakEventPairsAccessAndTransmitSites)
{
    // On the insecure OoO baseline Spectre v1 leaks via the d-cache;
    // the oracle must name both phases with distinct sites.
    const auto r =
        SpectreV1Cache().run(makeProfile(Profile::kOoo), 42);
    ASSERT_TRUE(r.leaked());
    ASSERT_TRUE(r.oracle.leaked());
    EXPECT_GT(r.oracle.firstLeakCycle(), 0u);
    EXPECT_GE(r.oracle.countFor(LeakChannel::kDCache), 1u);
    const LeakEvent &ev = r.oracle.first();
    EXPECT_NE(ev.transmitPc, ev.accessPc)
        << "access and transmit are separate instructions";
    EXPECT_GE(ev.transmitCycle, ev.accessCycle);
    EXPECT_EQ(ev.label, "victim-secret");
}

TEST(DiftOracle, BtbChannelDefeatsInvisiSpecButNotNdaStrict)
{
    // Paper §6 / Table 2: InvisiSpec hides the d-cache but not the
    // BTB; NDA strict propagation blocks both.
    SpectreV1Btb atk;
    const auto under_is =
        atk.run(makeProfile(Profile::kInvisiSpecSpectre), 42);
    EXPECT_TRUE(under_is.leaked());
    ASSERT_TRUE(under_is.oracle.leaked());
    EXPECT_GE(under_is.oracle.countFor(LeakChannel::kBtb), 1u)
        << "under InvisiSpec the surviving flow is the BTB update";
    EXPECT_EQ(under_is.oracle.countFor(LeakChannel::kDCache), 0u)
        << "shadow loads must not raise d-cache events";

    const auto under_nda =
        atk.run(makeProfile(Profile::kStrict), 42);
    EXPECT_FALSE(under_nda.leaked());
    EXPECT_FALSE(under_nda.oracle.leaked());
}

TEST(DiftOracle, SsbBlockedExactlyByBypassRestriction)
{
    // Paper Table 2: plain propagation does not stop SSB; adding
    // Bypass Restriction does. The oracle must land the same way.
    SpectreSsb atk;
    const auto permissive =
        atk.run(makeProfile(Profile::kPermissive), 42);
    EXPECT_TRUE(permissive.leaked());
    EXPECT_TRUE(permissive.oracle.leaked());

    const auto with_br =
        atk.run(makeProfile(Profile::kPermissiveBr), 42);
    EXPECT_FALSE(with_br.leaked());
    EXPECT_FALSE(with_br.oracle.leaked())
        << "the squashed bypassing load mutates nothing persistent";
}

TEST(DiftOracle, FullProtectionBlocksEverything)
{
    const SimConfig cfg = makeProfile(Profile::kFullProtection);
    for (const auto &attack : makeAllAttacks()) {
        const auto r = attack->run(cfg, 42);
        EXPECT_FALSE(r.leaked()) << attack->name();
        EXPECT_FALSE(r.oracle.leaked())
            << attack->name() << ": " << r.oracle.summary();
    }
}

} // namespace
} // namespace nda
