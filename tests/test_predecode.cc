/**
 * @file
 * Lockstep differential tests of the predecoded threaded-code run()
 * loop (isa/predecode.hh, interpreter.cc) against the switch-dispatch
 * step() oracle. run() must be bit-identical to a step() loop for
 * every attachment configuration (warming x predictor x DIFT), every
 * budget chunking, and every program shape the fuzzer can generate —
 * architectural state, taint image, warming images (cache tags,
 * predictor tables), and the functional-warming work counters all
 * have to match exactly. Also holds the MSR out-of-range fix: an
 * index past kNumMsrRegs faults on the interpreter and on both
 * timing cores instead of shifting out of range.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "branch/predictor_unit.hh"
#include "core/core_factory.hh"
#include "core/snapshot.hh"
#include "dift/secret_map.hh"
#include "dift/taint_engine.hh"
#include "harness/profiles.hh"
#include "isa/interpreter.hh"
#include "isa/predecode.hh"
#include "isa/program.hh"
#include "isa/random_program.hh"
#include "mem/hierarchy.hh"
#include "workloads/workload.hh"

namespace nda {
namespace {

/** Secrets seeded into the first data segment, fuzzer-style. */
SecretMap
secretsFor(const Program &prog)
{
    SecretMap secrets;
    for (const auto &seg : prog.data) {
        if (seg.bytes.empty())
            continue;
        const unsigned n =
            static_cast<unsigned>(std::min<std::size_t>(64, seg.bytes.size()));
        secrets.addMemRange(seg.base, n, "lockstep-secret");
        break;
    }
    return secrets;
}

/** One interpreter with optional warming/DIFT attachments. */
struct Machine {
    TaintEngine dift;
    Interpreter it;
    MemHierarchy hier{HierarchyParams{}};
    PredictorUnit bp{PredictorParams{}};

    Machine(const Program &prog, const SecretMap &secrets,
            bool warm_hier, bool warm_bp, bool use_dift)
        : dift(secrets), it(prog)
    {
        if (warm_hier || warm_bp)
            it.attachWarming(warm_hier ? &hier : nullptr,
                             warm_bp ? &bp : nullptr);
        if (use_dift)
            it.attachDift(&dift);
    }

    /** Whole-machine image, judged by SimSnapshot::operator==. */
    SimSnapshot
    snapshot() const
    {
        SimSnapshot s;
        s.arch = it.save();
        s.hasMem = true;
        s.mem = hier.save();
        s.memParams = HierarchyParams{};
        s.hasPredictor = true;
        s.predictor = bp.save();
        s.bpParams = PredictorParams{};
        return s;
    }
};

/**
 * Drive `fast` with run() in deliberately awkward chunks (to land
 * budget boundaries mid-loop, right before branches, on the final
 * instruction) and `oracle` with single step() calls to the same
 * instruction count, then require bit-identity everywhere.
 */
void
expectLockstep(const Program &prog, std::uint64_t total,
               bool warm_hier, bool warm_bp, bool use_dift,
               const char *what)
{
    const SecretMap secrets = secretsFor(prog);
    Machine fast(prog, secrets, warm_hier, warm_bp, use_dift);
    Machine oracle(prog, secrets, warm_hier, warm_bp, use_dift);

    // Prime-ish chunk sizes so boundaries never align with loop
    // bodies; 1-instruction chunks stress the entry/exit path itself.
    static const std::uint64_t kChunks[] = {1, 1, 2, 3, 7, 13, 97, 1009};
    std::size_t ci = 0;
    std::uint64_t ran = 0;
    while (ran < total && !fast.it.halted()) {
        const std::uint64_t chunk =
            std::min(total - ran, kChunks[ci % std::size(kChunks)]);
        ++ci;
        ran += fast.it.run(chunk);
    }

    while (oracle.it.instCount() < fast.it.instCount() &&
           !oracle.it.halted()) {
        oracle.it.step();
    }
    // An out-of-range/halting step after the last counted instruction
    // must also agree (run() takes it lazily via the sentinel op).
    if (fast.it.halted() && !oracle.it.halted())
        oracle.it.step();

    EXPECT_EQ(fast.it.instCount(), oracle.it.instCount()) << what;
    EXPECT_EQ(fast.it.halted(), oracle.it.halted()) << what;
    EXPECT_EQ(fast.it.pc(), oracle.it.pc()) << what;
    EXPECT_EQ(fast.it.faultCount(), oracle.it.faultCount()) << what;
    EXPECT_TRUE(fast.it.save() == oracle.it.save())
        << what << ": ArchState (incl. taint) diverged";
    EXPECT_TRUE(fast.snapshot() == oracle.snapshot())
        << what << ": machine snapshot (warming images) diverged";
    EXPECT_TRUE(fast.it.warmingWork() == oracle.it.warmingWork())
        << what << ": warming-work counters diverged";
}

// --------------------------------------------------------------------------
// Fuzzer corpus: every program shape, full attachments
// --------------------------------------------------------------------------

TEST(PredecodeLockstep, FuzzedProgramsFullyAttached)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        RandomProgramParams p;
        p.useMemory = (seed % 2) == 0;
        p.useIndirectCalls = (seed % 3) != 0;
        p.useFences = (seed % 2) == 1;
        p.useClflush = (seed % 4) == 0;
        p.useRdtsc = (seed % 4) == 1;
        p.callChainDepth = static_cast<unsigned>(seed % 5);
        const Program prog = generateRandomProgram(seed, p);
        expectLockstep(prog, 2'000'000, true, true, true,
                       ("fuzz seed " + std::to_string(seed)).c_str());
    }
}

// --------------------------------------------------------------------------
// Specialization matrix: all eight runImpl instantiations
// --------------------------------------------------------------------------

TEST(PredecodeLockstep, AttachmentMatrix)
{
    const Program prog = generateRandomProgram(42, RandomProgramParams{});
    for (int mask = 0; mask < 8; ++mask) {
        const bool warm_hier = (mask & 4) != 0;
        const bool warm_bp = (mask & 2) != 0;
        const bool use_dift = (mask & 1) != 0;
        expectLockstep(prog, 500'000, warm_hier, warm_bp, use_dift,
                       ("attachment mask " + std::to_string(mask)).c_str());
    }
}

// --------------------------------------------------------------------------
// Workload programs (the actual fast-forward inputs)
// --------------------------------------------------------------------------

TEST(PredecodeLockstep, WorkloadPrograms)
{
    for (const char *name : {"hashjoin", "ptrchase", "branchy", "mixed"}) {
        const auto w = makeWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        expectLockstep(w->build(7), 300'000, true, true, true, name);
    }
}

// --------------------------------------------------------------------------
// Edge semantics the threaded loop must preserve exactly
// --------------------------------------------------------------------------

TEST(PredecodeLockstep, RunOffEndIsLazyHalt)
{
    ProgramBuilder b("off-end");
    b.nop();
    b.nop();
    const Program prog = b.build();

    // step() oracle: the out-of-range "fetch" halts without charging
    // the budget or counting an instruction.
    Interpreter oracle(prog);
    EXPECT_EQ(oracle.step(), StepResult::kOk);
    EXPECT_EQ(oracle.step(), StepResult::kOk);
    EXPECT_EQ(oracle.step(), StepResult::kOutOfRange);

    Interpreter fast(prog);
    EXPECT_EQ(fast.run(100), 2u);
    EXPECT_TRUE(fast.halted());
    EXPECT_EQ(fast.pc(), oracle.pc());
    EXPECT_EQ(fast.instCount(), oracle.instCount());
    EXPECT_TRUE(fast.save() == oracle.save());
}

TEST(PredecodeLockstep, BudgetExpiresBeforeSentinel)
{
    // Budget runs out exactly at the last real instruction: run()
    // must NOT take the lazy halt — a later run() call does.
    ProgramBuilder b("exact");
    b.nop();
    b.nop();
    const Program prog = b.build();
    Interpreter it(prog);
    EXPECT_EQ(it.run(2), 2u);
    EXPECT_FALSE(it.halted());
    EXPECT_EQ(it.run(5), 0u);
    EXPECT_TRUE(it.halted());
}

TEST(PredecodeLockstep, FaultRedirectMatchesStep)
{
    // Faulting load with a registered handler: the threaded loop's
    // fault redirect must land exactly where step() lands.
    ProgramBuilder b("fault");
    b.segment(0x4000, {0x5A}, MemPerm::kKernel);
    b.movi(1, 0x4000);
    b.load(2, 1, 0, 1);              // faults: kernel page, user mode
    b.movi(3, 77);
    b.halt();
    auto handler = b.label();
    b.movi(4, 55);
    b.halt();
    b.faultHandlerAt(handler);
    const Program prog = b.build();

    expectLockstep(prog, 100, true, true, false, "fault redirect");

    Interpreter it(prog);
    it.run(100);
    EXPECT_TRUE(it.halted());
    EXPECT_EQ(it.faultCount(), 1u);
    EXPECT_EQ(it.reg(4), 55u);
    EXPECT_EQ(it.reg(3), 0u) << "fall-through path must be skipped";
}

TEST(PredecodeLockstep, PredecodeDirectBranchTargets)
{
    // Direct-branch targets are pre-resolved to op indices; an
    // out-of-program target must clamp to the halt sentinel.
    ProgramBuilder b("clamp");
    auto top = b.label();
    b.jmp(top);
    b.nop();
    Program prog = b.build();
    prog.code[0].imm = 5;            // retarget past the end
    const PredecodedProgram pre(prog);
    ASSERT_EQ(pre.size(), 2u);
    EXPECT_EQ(pre.ops()[0].targetIdx, pre.size())
        << "out-of-range target clamps to sentinel";
    EXPECT_EQ(pre.ops()[pre.size()].handler,
              PredecodedProgram::kOutOfRangeHandler);

    Interpreter it(prog);
    it.run(10);
    EXPECT_TRUE(it.halted());
    EXPECT_EQ(it.pc(), 5u) << "raw out-of-range pc preserved";
    EXPECT_EQ(it.instCount(), 1u);
}

// --------------------------------------------------------------------------
// MSR out-of-range regression (formerly shift UB / array OOB)
// --------------------------------------------------------------------------

/** Build a program whose MSR index is out of range (the builder
 *  rejects those, so patch the immediate in post). */
Program
msrProbeProgram(std::int64_t idx, bool write)
{
    ProgramBuilder b("msr-oob");
    b.movi(1, 0xABCD);
    if (write) {
        b.wrmsr(0, 1);
        b.rdmsr(2, 0);
    } else {
        b.movi(2, 0x5A5A);
        b.rdmsr(2, 0);
    }
    b.halt();
    Program prog = b.build();
    prog.code[write ? 1 : 2].imm = idx;   // the rdmsr/wrmsr op
    return prog;
}

TEST(MsrOutOfRange, InterpreterFaults)
{
    // idx 9: past kNumMsrRegs but inside the shift width (array OOB
    // before the fix). idx 40: past the shift width (UB before the
    // fix). Both must fault and leave rd untouched... and run() and
    // step() must agree on all of it.
    for (std::int64_t idx : {9, 40}) {
        for (bool write : {false, true}) {
            const Program prog = msrProbeProgram(idx, write);
            expectLockstep(prog, 100, true, true, true, "msr oob");

            Interpreter it(prog);
            it.run(100);
            EXPECT_TRUE(it.halted());
            EXPECT_EQ(it.faultCount(), 1u) << "idx " << idx;
            if (!write) {
                EXPECT_EQ(it.reg(2), 0x5A5Au)
                    << "faulting rdmsr must not write rd";
            } else {
                for (int m = 0; m < kNumMsrRegs; ++m)
                    EXPECT_EQ(it.msr(m), 0u) << "faulting wrmsr wrote msr";
            }
        }
    }
}

TEST(MsrOutOfRange, TimingCoresMatchInterpreter)
{
    // Both timing cores must produce the interpreter's architectural
    // outcome for out-of-range MSR indices. kOoo keeps the Meltdown
    // flaw enabled, so this also exercises the transient-forwarding
    // path that used to read msrs_[] and the taint table out of
    // bounds.
    for (std::int64_t idx : {9, 40}) {
        for (bool write : {false, true}) {
            const Program prog = msrProbeProgram(idx, write);
            Interpreter ref(prog);
            ref.run(1'000);
            ASSERT_TRUE(ref.halted());

            for (Profile p : {Profile::kOoo, Profile::kInOrder,
                              Profile::kFullProtection}) {
                auto core = makeCore(prog, makeProfile(p));
                core->run(~std::uint64_t{0}, 1'000'000);
                ASSERT_TRUE(core->halted()) << profileName(p);
                // Faulting instructions squash rather than commit, so
                // compare the architectural outcome and fault count
                // (the test_differential convention), not instCount.
                EXPECT_EQ(core->counters().faults, ref.faultCount())
                    << profileName(p) << " idx " << idx;
                for (RegId r = 0; r < kNumArchRegs; ++r) {
                    EXPECT_EQ(core->archReg(r), ref.reg(r))
                        << profileName(p) << " r" << int(r);
                }
            }
        }
    }
}

} // namespace
} // namespace nda
