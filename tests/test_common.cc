/**
 * @file
 * Unit tests for common utilities: PRNG, statistics, histogram.
 */

#include <gtest/gtest.h>

#include "common/histogram.hh"
#include "common/stats_util.hh"
#include "common/xrandom.hh"

namespace nda {
namespace {

TEST(XRandom, DeterministicForSeed)
{
    XRandom a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(XRandom, DifferentSeedsDiffer)
{
    XRandom a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(XRandom, BelowStaysInRange)
{
    XRandom rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(XRandom, RangeInclusive)
{
    XRandom rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(XRandom, ChanceApproximatesProbability)
{
    XRandom rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(1, 4);
    EXPECT_NEAR(hits, 2500, 200);
}

TEST(XRandom, UniformInUnitInterval)
{
    XRandom rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(XRandom, ReseedRestartsSequence)
{
    XRandom rng(5);
    const auto first = rng.next();
    rng.next();
    rng.reseed(5);
    EXPECT_EQ(rng.next(), first);
}

TEST(StatsUtil, MeanOfKnownSample)
{
    EXPECT_DOUBLE_EQ(sampleMean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(sampleMean({}), 0.0);
}

TEST(StatsUtil, StddevOfKnownSample)
{
    // Sample {2, 4, 4, 4, 5, 5, 7, 9}: sample stddev ~= 2.138.
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_NEAR(sampleStddev(xs), 2.138, 0.001);
    EXPECT_DOUBLE_EQ(sampleStddev({5.0}), 0.0);
}

TEST(StatsUtil, ConfidenceIntervalUsesStudentT)
{
    // n=2, values {1, 3}: mean 2, s = sqrt(2), CI = 12.706*s/sqrt(2).
    const double ci = confidenceHalfWidth95({1.0, 3.0});
    EXPECT_NEAR(ci, 12.706, 0.01);
    EXPECT_DOUBLE_EQ(confidenceHalfWidth95({1.0}), 0.0);
}

TEST(StatsUtil, ConfidenceShrinksWithSamples)
{
    std::vector<double> xs;
    double prev = 1e9;
    for (int n = 2; n <= 30; n += 7) {
        xs.clear();
        for (int i = 0; i < n; ++i)
            xs.push_back(i % 2 ? 1.0 : 3.0);
        const double ci = confidenceHalfWidth95(xs);
        EXPECT_LT(ci, prev);
        prev = ci;
    }
}

TEST(StatsUtil, GeomeanOfKnownSample)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(RunningStat, TracksMinMaxMean)
{
    RunningStat s;
    s.add(3.0);
    s.add(1.0);
    s.add(5.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, MeanAndCount)
{
    Histogram h(16);
    h.add(2);
    h.add(4);
    h.add(6);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, PercentileOrdering)
{
    Histogram h(128);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.add(v);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 50.0, 2.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.95)), 95.0, 2.0);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(4);
    h.add(1000);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Histogram, OverflowAccessorCountsOnlyBeyondCap)
{
    Histogram h(4);
    EXPECT_EQ(h.overflow(), 0u);
    h.add(3); // in range
    h.add(4); // at the cap: still a unit-width bucket
    EXPECT_EQ(h.overflow(), 0u);
    h.add(5);
    h.add(5000);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.overflow(), h.buckets().back());
    // Clamped tail: the overflow index is the reported percentile.
    EXPECT_EQ(h.percentile(0.99), h.buckets().size() - 1);
    h.reset();
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, SummaryReportsOverflow)
{
    Histogram h(4);
    h.add(1);
    h.add(77);
    EXPECT_NE(h.summary().find("ovf=1"), std::string::npos);
}

TEST(Histogram, ResetClears)
{
    Histogram h(4);
    h.add(1);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

} // namespace
} // namespace nda
