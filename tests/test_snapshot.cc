/**
 * @file
 * Tests of the ArchState/SimSnapshot layer (core/arch_state.hh,
 * core/snapshot.hh): save -> restore must be invisible — a run resumed
 * from a mid-run snapshot must be bit-identical to the uninterrupted
 * run, for the architectural state, the DIFT taint travelling with
 * it, and the structural warming state (cache tags, predictor
 * tables). On top of that, the grid harness's checkpoint-reuse path
 * must produce results exactly equal to the legacy rebuild-per-window
 * path while doing measurably less functional work.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "branch/predictor_unit.hh"
#include "core/core_factory.hh"
#include "core/snapshot.hh"
#include "dift/secret_map.hh"
#include "dift/taint_engine.hh"
#include "harness/profiles.hh"
#include "harness/runner.hh"
#include "isa/interpreter.hh"
#include "mem/hierarchy.hh"
#include "workloads/workload.hh"

namespace nda {
namespace {

// --------------------------------------------------------------------------
// Interpreter: resumed == uninterrupted, bit for bit
// --------------------------------------------------------------------------

TEST(ArchStateSnapshot, InterpreterResumeIsBitExact)
{
    const auto w = makeWorkload("hashjoin");
    ASSERT_NE(w, nullptr);
    const Program prog = w->build(7);
    ASSERT_FALSE(prog.data.empty());
    SecretMap secrets;
    secrets.addMemRange(prog.data.front().base, 64, "key");

    // Uninterrupted reference machine: interpreter + warming + DIFT.
    TaintEngine dift_a(secrets);
    Interpreter a(prog);
    MemHierarchy hier_a;
    PredictorUnit bp_a;
    a.attachWarming(&hier_a, &bp_a);
    a.attachDift(&dift_a);
    a.run(10'000);
    ASSERT_FALSE(a.halted());

    // Same machine interrupted at 4000 and snapshotted.
    TaintEngine dift_b(secrets);
    Interpreter b(prog);
    MemHierarchy hier_b;
    PredictorUnit bp_b;
    b.attachWarming(&hier_b, &bp_b);
    b.attachDift(&dift_b);
    b.run(4'000);
    const ArchState mid = b.save();
    const MemHierarchy::Snapshot mid_mem = hier_b.save();
    const PredictorUnit::Snapshot mid_bp = bp_b.save();
    EXPECT_TRUE(mid.hasTaint);
    EXPECT_FALSE(mid.memTaint.empty()) << "secret range seeds taint";

    // Entirely fresh machine resumed from the snapshot.
    TaintEngine dift_c(secrets);
    Interpreter c(prog);
    MemHierarchy hier_c;
    PredictorUnit bp_c;
    c.attachWarming(&hier_c, &bp_c);
    c.attachDift(&dift_c);
    c.restore(mid);
    hier_c.restore(mid_mem);
    bp_c.restore(mid_bp);
    EXPECT_EQ(c.instCount(), 4'000u);
    c.run(6'000);

    EXPECT_TRUE(c.save() == a.save())
        << "arch state (regs, mem, pc, taint) diverged after resume";
    EXPECT_TRUE(hier_c.save() == hier_a.save())
        << "cache tags/LRU diverged after resume";
    EXPECT_TRUE(bp_c.save() == bp_a.save())
        << "predictor tables diverged after resume";
}

// --------------------------------------------------------------------------
// In-order core: restore round-trips and agrees with the interpreter
// --------------------------------------------------------------------------

TEST(ArchStateSnapshot, InOrderRestoreRoundTripsAndMatchesInterpreter)
{
    const auto w = makeWorkload("compute");
    const Program prog = w->build(3);
    const SimConfig cfg = makeProfile(Profile::kInOrder);
    const SimSnapshot ckpt = buildWarmCheckpoint(
        prog, cfg.memory, cfg.core.predictor, 8'000);
    ASSERT_TRUE(ckpt.hasMem);
    EXPECT_EQ(ckpt.arch.instCount, 8'000u);

    auto core = makeCore(prog, cfg);
    core->restoreCheckpoint(ckpt);

    // Re-saving immediately must reproduce the checkpoint exactly.
    SimSnapshot resaved;
    core->saveCheckpoint(resaved);
    EXPECT_TRUE(resaved.arch == ckpt.arch);
    EXPECT_TRUE(resaved.mem == ckpt.mem);

    core->run(5'000, ~Cycle{0});
    ASSERT_FALSE(core->halted());
    EXPECT_EQ(core->committedInsts(), 13'000u);

    // NDA changes only timing: the restored timing core must land on
    // the interpreter's architectural state at the same inst count.
    Interpreter ref(prog);
    ref.run(13'000);
    for (RegId r = 0; r < kNumArchRegs; ++r)
        EXPECT_EQ(core->archReg(r), ref.reg(r)) << "reg " << int(r);
    for (unsigned i = 0; i < kNumMsrRegs; ++i)
        EXPECT_EQ(core->msr(i), ref.msr(i)) << "msr " << i;
    EXPECT_TRUE(core->mem() == ref.mem());
}

// --------------------------------------------------------------------------
// OoO core: restore is deterministic and architecturally faithful
// --------------------------------------------------------------------------

TEST(ArchStateSnapshot, OooRestoreDeterministicAndMatchesInterpreter)
{
    const auto w = makeWorkload("branchy");
    const Program prog = w->build(5);
    const SimConfig cfg = makeProfile(Profile::kOoo);
    const SimSnapshot ckpt = buildWarmCheckpoint(
        prog, cfg.memory, cfg.core.predictor, 8'000);
    ASSERT_TRUE(ckpt.hasPredictor);

    auto c1 = makeCore(prog, cfg);
    auto c2 = makeCore(prog, cfg);
    c1->restoreCheckpoint(ckpt);
    c2->restoreCheckpoint(ckpt);
    c1->run(4'000, ~Cycle{0});
    c2->run(4'000, ~Cycle{0});

    EXPECT_EQ(c1->cycle(), c2->cycle());
    EXPECT_EQ(c1->committedInsts(), c2->committedInsts());
    EXPECT_EQ(c1->committedInsts(), 12'000u);

    SimSnapshot s1, s2;
    c1->saveCheckpoint(s1);
    c2->saveCheckpoint(s2);
    EXPECT_TRUE(s1.arch == s2.arch);
    EXPECT_TRUE(s1.mem == s2.mem) << "cache state diverged";
    EXPECT_TRUE(s1.predictor == s2.predictor)
        << "predictor state diverged";

    // Committed register state agrees with the reference interpreter
    // at the same retirement count.
    Interpreter ref(prog);
    ref.run(c1->committedInsts());
    for (RegId r = 0; r < kNumArchRegs; ++r)
        EXPECT_EQ(c1->archReg(r), ref.reg(r)) << "reg " << int(r);
}

TEST(ArchStateSnapshot, StructuralCompatibilityGatesGeometryOnly)
{
    const auto w = makeWorkload("crc");
    const Program prog = w->build(1);
    const SimConfig cfg = makeProfile(Profile::kOoo);
    const SimSnapshot ckpt = buildWarmCheckpoint(
        prog, cfg.memory, cfg.core.predictor, 1'000);

    EXPECT_TRUE(ckpt.structurallyCompatible(cfg));

    // Latency changes do not affect warming state: still compatible.
    SimConfig slower = cfg;
    slower.memory.l2.hitLatency = 77;
    slower.memory.dramLatency = 300;
    EXPECT_TRUE(ckpt.structurallyCompatible(slower));

    SimConfig small_l1d = cfg;
    small_l1d.memory.l1d.sizeBytes /= 2;
    EXPECT_FALSE(ckpt.structurallyCompatible(small_l1d));

    SimConfig small_btb = cfg;
    small_btb.core.predictor.btb.entries = 1024;
    EXPECT_FALSE(ckpt.structurallyCompatible(small_btb));
}

// --------------------------------------------------------------------------
// Grid harness: checkpoint reuse == legacy, with less functional work
// --------------------------------------------------------------------------

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    // Exact equality on doubles is intentional: the contract is
    // bit-identical output, not merely close.
    EXPECT_EQ(a.mean.cpi, b.mean.cpi);
    EXPECT_EQ(a.mean.mlp, b.mean.mlp);
    EXPECT_EQ(a.mean.ilp, b.mean.ilp);
    EXPECT_EQ(a.mean.condMispredictRate, b.mean.condMispredictRate);
    EXPECT_EQ(a.mean.instructions, b.mean.instructions);
    EXPECT_EQ(a.mean.cycles, b.mean.cycles);
    EXPECT_EQ(a.cpiCi95, b.cpiCi95);
    EXPECT_EQ(a.cpiSamples, b.cpiSamples);
}

SampleParams
gridParams()
{
    SampleParams sp;
    sp.fastforwardInsts = 20'000;
    sp.warmupInsts = 1'000;
    sp.measureInsts = 2'000;
    sp.samples = 2;
    sp.baseSeed = 11;
    sp.jobs = 2;
    return sp;
}

TEST(CheckpointReuse, GridEqualsLegacyAndDoesLessWork)
{
    std::vector<std::unique_ptr<Workload>> ws;
    ws.push_back(makeWorkload("crc"));
    ws.push_back(makeWorkload("stream"));

    // Include a config whose cache geometry differs from the shared
    // checkpoint's: it must fall back to a per-window fast-forward
    // and still be bit-identical between the two modes.
    SimConfig small = makeProfile(Profile::kOoo);
    small.name = "small-l1d";
    small.memory.l1d.sizeBytes = 16 * 1024;
    const std::vector<SimConfig> configs{
        makeProfile(Profile::kOoo),
        makeProfile(Profile::kFullProtection),
        makeProfile(Profile::kInOrder), small};

    const SampleParams reuse = gridParams();
    SampleParams legacy = gridParams();
    legacy.reuseCheckpoints = false;

    GridStats reuse_stats, legacy_stats;
    const auto a = runGrid(ws, configs, reuse, nullptr, &reuse_stats);
    const auto b = runGrid(ws, configs, legacy, nullptr, &legacy_stats);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdentical(a[i], b[i]);

    const std::uint64_t w_s = ws.size() * reuse.samples;       // 4
    const std::uint64_t windows = w_s * configs.size();        // 16
    EXPECT_EQ(reuse_stats.windows, windows);
    EXPECT_EQ(legacy_stats.windows, windows);
    EXPECT_EQ(reuse_stats.checkpointRestores, windows);
    EXPECT_EQ(legacy_stats.checkpointRestores, windows);

    // Reuse: one shared fast-forward per (workload, sample), plus a
    // per-window fallback for the one incompatible config. Legacy:
    // one per window.
    EXPECT_EQ(reuse_stats.ffRuns, w_s + w_s);
    EXPECT_EQ(legacy_stats.ffRuns, windows);
    EXPECT_LT(reuse_stats.ffInsts, legacy_stats.ffInsts);
    EXPECT_EQ(reuse_stats.measuredInsts,
              windows * reuse.measureInsts);
}

TEST(CheckpointReuse, GridIsJobsInvariantWithFastForward)
{
    std::vector<std::unique_ptr<Workload>> ws;
    ws.push_back(makeWorkload("ptrchase"));
    const std::vector<SimConfig> configs{
        makeProfile(Profile::kOoo), makeProfile(Profile::kStrict)};

    SampleParams serial = gridParams();
    serial.jobs = 1;
    SampleParams parallel = gridParams();
    parallel.jobs = 8;

    const auto a = runGrid(ws, configs, serial);
    const auto b = runGrid(ws, configs, parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdentical(a[i], b[i]);
}

// --------------------------------------------------------------------------
// Non-blocking (MSHR) hierarchy: mid-miss saves
// --------------------------------------------------------------------------

/** Tick until at least one MSHR fill is in flight; false if the core
 *  halts or the budget runs out first. */
bool
tickToPendingMiss(CoreBase &core, Cycle limit)
{
    while (core.cycle() < limit && !core.halted()) {
        core.tick();
        if (!core.hierarchy().mshrDrained())
            return true;
    }
    return false;
}

TEST(MshrSnapshot, OooMidMissSaveRoundTripsBitExact)
{
    // A checkpoint taken with fills in flight drains them into the
    // captured image (the state the machine converges to), so
    // save -> restore -> save must be a fixed point and the snapshot
    // must carry no MSHR residue a legacy consumer could trip over.
    const auto w = makeWorkload("stream");
    const Program prog = w->build(3);
    SimConfig cfg = makeProfile(Profile::kOoo);
    cfg.memory.mshrEntries = 4;

    auto core = makeCore(prog, cfg);
    ASSERT_TRUE(tickToPendingMiss(*core, 100'000))
        << "stream never left a miss in flight";
    SimSnapshot mid;
    core->saveCheckpoint(mid);

    auto fresh = makeCore(prog, cfg);
    fresh->restoreCheckpoint(mid);
    SimSnapshot again;
    fresh->saveCheckpoint(again);
    EXPECT_TRUE(again == mid)
        << "mid-miss save -> restore -> save is not a fixed point";
}

TEST(MshrSnapshot, InOrderMidStallSaveRoundTripsBitExact)
{
    const auto w = makeWorkload("stream");
    const Program prog = w->build(3);
    SimConfig cfg = makeProfile(Profile::kInOrder);
    cfg.memory.mshrEntries = 1;

    auto core = makeCore(prog, cfg);
    ASSERT_TRUE(tickToPendingMiss(*core, 100'000))
        << "the blocking core never stalled on a miss";
    SimSnapshot mid;
    core->saveCheckpoint(mid);

    auto fresh = makeCore(prog, cfg);
    fresh->restoreCheckpoint(mid);
    SimSnapshot again;
    fresh->saveCheckpoint(again);
    EXPECT_TRUE(again == mid);
}

TEST(MshrCheckpointReuse, GridWithMshrEqualsLegacy)
{
    // The PR-7 reuse machinery must be oblivious to the MSHR knob:
    // reuse and rebuild-per-window grids stay bit-identical with
    // non-blocking caches on.
    std::vector<std::unique_ptr<Workload>> ws;
    ws.push_back(makeWorkload("crc"));
    ws.push_back(makeWorkload("stream"));
    std::vector<SimConfig> configs{makeProfile(Profile::kOoo),
                                   makeProfile(Profile::kStrict)};
    for (SimConfig &cfg : configs)
        cfg.memory.mshrEntries = 4;

    const SampleParams reuse = gridParams();
    SampleParams legacy = gridParams();
    legacy.reuseCheckpoints = false;

    const auto a = runGrid(ws, configs, reuse);
    const auto b = runGrid(ws, configs, legacy);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdentical(a[i], b[i]);
}

// --------------------------------------------------------------------------
// SampleParams validation
// --------------------------------------------------------------------------

TEST(SampleParamsDeathTest, RejectsZeroSamples)
{
    SampleParams sp;
    sp.samples = 0;
    EXPECT_DEATH(sp.validate(), "samples");
}

TEST(SampleParamsDeathTest, RejectsEmptyMeasuredWindow)
{
    SampleParams sp;
    sp.measureInsts = 0;
    EXPECT_DEATH(sp.validate(), "measureInsts");
}

// --------------------------------------------------------------------------
// Component snapshots
// --------------------------------------------------------------------------

TEST(ComponentSnapshots, HierarchyRoundTrip)
{
    MemHierarchy h;
    for (Addr a = 0; a < 300; ++a)
        h.dataAccess(a * kLineSize);
    const MemHierarchy::Snapshot snap = h.save();

    h.dataAccess(9'999 * kLineSize);
    EXPECT_FALSE(h.save() == snap);

    h.restore(snap);
    EXPECT_TRUE(h.save() == snap);
}

TEST(ComponentSnapshots, PredictorRoundTrip)
{
    PredictorUnit bp;
    for (Addr pc = 0; pc < 200; ++pc) {
        bp.direction().predict(pc);
        bp.direction().update(pc, pc % 3 == 0, 0);
        bp.btbUpdate(pc, pc + 17);
        if (pc % 5 == 0)
            bp.ras().push(pc + 1);
    }
    const PredictorUnit::Snapshot snap = bp.save();

    bp.btbUpdate(4'321, 1);
    bp.direction().predict(50);
    bp.ras().pop();
    EXPECT_FALSE(bp.save() == snap);

    bp.restore(snap);
    EXPECT_TRUE(bp.save() == snap);
}

TEST(ComponentSnapshots, MemoryMapEquality)
{
    MemoryMap m1, m2;
    m1.write(0x1000, 42, 8);
    m2.write(0x1000, 42, 8);
    EXPECT_TRUE(m1 == m2);
    m2.write(0x1000, 43, 8);
    EXPECT_FALSE(m1 == m2);
}

TEST(ComponentSnapshotsDeathTest, GeometryMismatchPanics)
{
    MemHierarchy big;
    const MemHierarchy::Snapshot snap = big.save();
    HierarchyParams small_params;
    small_params.l1d.sizeBytes = 16 * 1024;
    MemHierarchy small(small_params);
    EXPECT_DEATH(small.restore(snap), "geometry");
}

} // namespace
} // namespace nda
