/**
 * @file
 * Corpus regression replay: every minimized repro checked in under
 * tests/corpus/ is re-run through the full differential harness —
 * interpreter oracle vs every machine profile, DIFT taint compare,
 * per-cycle invariant checking — on every build. A divergence that
 * was found (and fixed) once can never silently come back.
 */

#include <gtest/gtest.h>

#include "fuzz/corpus.hh"
#include "fuzz/differential_fuzzer.hh"

#ifndef NDASIM_CORPUS_DIR
#error "NDASIM_CORPUS_DIR must point at tests/corpus"
#endif

namespace nda {
namespace {

class CorpusTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CorpusTest, ReplaysCleanOnAllProfiles)
{
    const std::string &path = GetParam();
    Program prog;
    ASSERT_NO_THROW(prog = loadCorpusEntry(path)) << path;

    FuzzParams p; // defaults: all ten profiles, taint + invariants on
    const SeedOutcome out = fuzzProgram(prog, 0, p);
    EXPECT_FALSE(out.skipped) << path << ": oracle did not halt";
    for (const FuzzFailure &f : out.failures) {
        ADD_FAILURE() << path << " [" << fuzzFailureKindName(f.kind)
                      << " on " << profileName(f.profile)
                      << "]: " << f.detail;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllEntries, CorpusTest,
    ::testing::ValuesIn([] {
        std::vector<std::string> entries = listCorpus(NDASIM_CORPUS_DIR);
        // gtest rejects empty ValuesIn; an empty corpus also means the
        // checked-in repros went missing, which must fail loudly.
        if (entries.empty())
            entries.push_back("<corpus missing: " +
                              std::string(NDASIM_CORPUS_DIR) + ">");
        return entries;
    }()),
    [](const auto &info) {
        std::string name = info.param;
        const auto slash = name.find_last_of('/');
        if (slash != std::string::npos)
            name = name.substr(slash + 1);
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name + "_" + std::to_string(info.index);
    });

} // namespace
} // namespace nda
