/**
 * @file
 * Tests of the checkpoint-corpus subsystem (src/ckpt/): the versioned
 * binary serializer must round-trip every engine's SimSnapshot
 * exactly (operator==), reject any corrupted byte stream without
 * crashing, and serialize deterministically; the CheckpointStore must
 * hit/miss/publish correctly, quarantine corruption as a miss, evict
 * LRU under a size cap, survive reopen, and never let a structurally
 * incompatible entry reach a grid; and chained fast-forwarding
 * (extendWarmCheckpoint) must compose bit-for-bit with from-scratch
 * builds, with and without DIFT attached.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "ckpt/checkpoint_store.hh"
#include "ckpt/serializer.hh"
#include "core/core_factory.hh"
#include "core/ooo_core.hh"
#include "core/snapshot.hh"
#include "dift/secret_map.hh"
#include "dift/taint_engine.hh"
#include "harness/profiles.hh"
#include "harness/runner.hh"
#include "isa/interpreter.hh"
#include "workloads/workload.hh"

namespace nda {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory, removed on destruction. */
struct ScratchDir {
    explicit ScratchDir(const char *name)
        : path(fs::path(testing::TempDir()) / name)
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~ScratchDir() { fs::remove_all(path); }
    fs::path path;
    std::string str() const { return path.string(); }
};

SimSnapshot
interpCheckpoint(const char *workload, std::uint64_t seed,
                 std::uint64_t ff, TaintEngine *dift = nullptr)
{
    const auto w = makeWorkload(workload);
    EXPECT_NE(w, nullptr);
    const Program prog = w->build(seed);
    const SimConfig cfg = makeProfile(Profile::kOoo);
    return buildWarmCheckpoint(prog, cfg.memory, cfg.core.predictor,
                               ff, dift);
}

// --------------------------------------------------------------------------
// Serializer: exact round-trip on every engine's snapshot
// --------------------------------------------------------------------------

TEST(CkptSerializer, RoundTripsInterpreterCheckpointWithTaint)
{
    const auto w = makeWorkload("hashjoin");
    const Program prog = w->build(9);
    ASSERT_FALSE(prog.data.empty());
    SecretMap secrets;
    secrets.addMemRange(prog.data.front().base, 64, "key");
    TaintEngine dift(secrets);

    const SimConfig cfg = makeProfile(Profile::kOoo);
    const SimSnapshot snap = buildWarmCheckpoint(
        prog, cfg.memory, cfg.core.predictor, 6'000, &dift);
    ASSERT_TRUE(snap.arch.hasTaint);
    ASSERT_FALSE(snap.arch.memTaint.empty());

    CkptWriter writer;
    writer.put(snap);
    ASSERT_FALSE(writer.bytes().empty());

    CkptReader reader;
    SimSnapshot back;
    ASSERT_TRUE(reader.parse(writer.bytes().data(),
                             writer.bytes().size(), back))
        << reader.error();
    EXPECT_TRUE(back == snap)
        << "deserialized snapshot differs from the original";
    EXPECT_TRUE(back.arch == snap.arch);
    EXPECT_TRUE(back.mem == snap.mem);
    EXPECT_TRUE(back.predictor == snap.predictor);
}

TEST(CkptSerializer, RoundTripsInOrderAndOooCoreCheckpoints)
{
    const auto w = makeWorkload("branchy");
    const Program prog = w->build(4);
    for (const Profile p : {Profile::kInOrder, Profile::kOoo}) {
        const SimConfig cfg = makeProfile(p);
        const SimSnapshot warm = buildWarmCheckpoint(
            prog, cfg.memory, cfg.core.predictor, 4'000);
        auto core = makeCore(prog, cfg);
        core->restoreCheckpoint(warm);
        core->run(2'000, ~Cycle{0});
        SimSnapshot snap;
        core->saveCheckpoint(snap);

        CkptWriter writer;
        writer.put(snap);
        CkptReader reader;
        SimSnapshot back;
        ASSERT_TRUE(reader.parse(writer.bytes().data(),
                                 writer.bytes().size(), back))
            << profileName(p) << ": " << reader.error();
        EXPECT_TRUE(back == snap) << profileName(p);
    }
}

TEST(CkptSerializer, RoundTripsMidMissMshrSave)
{
    // A checkpoint taken while MSHR fills are in flight drains them
    // into the captured image; the byte format is unchanged (the MSHR
    // knob is timing-only), so the serializer must round-trip it like
    // any other snapshot.
    const auto w = makeWorkload("stream");
    const Program prog = w->build(3);
    SimConfig cfg = makeProfile(Profile::kOoo);
    cfg.memory.mshrEntries = 4;

    auto core = makeCore(prog, cfg);
    bool pending = false;
    while (core->cycle() < 100'000 && !core->halted()) {
        core->tick();
        if (!core->hierarchy().mshrDrained()) {
            pending = true;
            break;
        }
    }
    ASSERT_TRUE(pending) << "stream never left a miss in flight";
    SimSnapshot snap;
    core->saveCheckpoint(snap);

    CkptWriter writer;
    writer.put(snap);
    CkptReader reader;
    SimSnapshot back;
    ASSERT_TRUE(reader.parse(writer.bytes().data(),
                             writer.bytes().size(), back))
        << reader.error();
    EXPECT_TRUE(back == snap);
    EXPECT_TRUE(back.mem == snap.mem);
}

TEST(CkptSerializer, RoundTripsArchOnlySnapshot)
{
    const auto w = makeWorkload("crc");
    const Program prog = w->build(2);
    Interpreter interp(prog);
    interp.run(3'000);

    SimSnapshot snap;
    snap.arch = interp.save();
    ASSERT_FALSE(snap.hasMem);
    ASSERT_FALSE(snap.hasPredictor);

    CkptWriter writer;
    writer.put(snap);
    CkptReader reader;
    SimSnapshot back;
    ASSERT_TRUE(reader.parse(writer.bytes().data(),
                             writer.bytes().size(), back))
        << reader.error();
    EXPECT_FALSE(back.hasMem);
    EXPECT_FALSE(back.hasPredictor);
    EXPECT_TRUE(back == snap);
}

TEST(CkptSerializer, SerializationIsDeterministic)
{
    // Same snapshot -> same bytes, across independent writers. This
    // is what lets the corpus treat the key as a content address.
    const SimSnapshot snap = interpCheckpoint("stream", 5, 5'000);
    CkptWriter a, b;
    a.put(snap);
    b.put(snap);
    EXPECT_EQ(a.bytes(), b.bytes());
}

// --------------------------------------------------------------------------
// Serializer: SMT version gating (schema v2 only when extra threads exist)
// --------------------------------------------------------------------------

/** Schema version field of a serialized image (u32 LE at offset 8). */
std::uint32_t
imageVersion(const std::vector<std::uint8_t> &bytes)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(bytes[8 + i]) << (8 * i);
    return v;
}

/** An smt=2 core snapshot with one extra thread context captured. */
SimSnapshot
smtCheckpoint()
{
    ProgramBuilder b("smt-ckpt");
    b.zeroSegment(0x1000, 64);
    b.movi(1, 0);
    b.movi(2, 0);
    auto loop = b.label();
    b.addi(2, 2, 1);
    b.add(1, 1, 2);
    b.movi(3, 5000);
    b.blt(2, 3, loop);
    b.movi(4, 0x1000);
    b.store(4, 0, 1, 8);
    b.halt();
    Program prog = b.build(); // homogeneous co-run on both threads

    SimConfig cfg;
    cfg.core.smtThreads = 2;
    OooCore core(prog, cfg);
    core.run(800, ~Cycle{0});
    SimSnapshot snap;
    core.saveCheckpoint(snap);
    return snap;
}

TEST(CkptSerializer, SmtSnapshotRoundTripsUnderSchemaV2)
{
    const SimSnapshot snap = smtCheckpoint();
    ASSERT_EQ(snap.extraThreads.size(), 1u);

    CkptWriter writer;
    writer.put(snap);
    EXPECT_EQ(imageVersion(writer.bytes()), 2u)
        << "extra threads must bump the schema version";

    CkptReader reader;
    SimSnapshot back;
    ASSERT_TRUE(reader.parse(writer.bytes().data(),
                             writer.bytes().size(), back))
        << reader.error();
    EXPECT_TRUE(back == snap);
    ASSERT_EQ(back.extraThreads.size(), 1u);
    EXPECT_TRUE(back.extraThreads[0] == snap.extraThreads[0]);
}

TEST(CkptSerializer, SingleThreadSnapshotStaysSchemaV1)
{
    // Byte-for-byte backward compatibility: without extra threads the
    // writer must emit exactly the v1 format, so the whole pre-SMT
    // corpus (and any file written at smt=1 today) stays one schema.
    const SimSnapshot snap = interpCheckpoint("stream", 7, 4'000);
    ASSERT_TRUE(snap.extraThreads.empty());

    CkptWriter writer;
    writer.put(snap);
    EXPECT_EQ(imageVersion(writer.bytes()), 1u)
        << "an smt=1 snapshot must remain a v1 file";

    CkptReader reader;
    SimSnapshot back;
    ASSERT_TRUE(reader.parse(writer.bytes().data(),
                             writer.bytes().size(), back))
        << reader.error();
    EXPECT_TRUE(back == snap);
    EXPECT_TRUE(back.extraThreads.empty());
}

TEST(CkptSerializer, RejectsThreadsSectionInV1File)
{
    // A THREADS section is meaningless under schema v1; a file that
    // claims v1 but carries one is corrupt and must be rejected (the
    // section CRCs do not cover the header, so this is a real hole a
    // tampered index could otherwise slip through).
    const SimSnapshot snap = smtCheckpoint();
    CkptWriter writer;
    writer.put(snap);
    std::vector<std::uint8_t> downgraded = writer.bytes();
    ASSERT_EQ(imageVersion(downgraded), 2u);
    downgraded[8] = 1; // patch the version field back to v1

    CkptReader reader;
    SimSnapshot out;
    EXPECT_FALSE(
        reader.parse(downgraded.data(), downgraded.size(), out));
    EXPECT_NE(reader.error().find("THREADS"), std::string::npos)
        << reader.error();
}

// --------------------------------------------------------------------------
// Serializer: corruption never crashes, always rejects
// --------------------------------------------------------------------------

/** Section boundaries of a serialized image: byte offsets of each
 *  frame header and payload, derived by walking the format. */
std::vector<std::size_t>
interestingOffsets(const std::vector<std::uint8_t> &bytes)
{
    std::vector<std::size_t> offs;
    // Header: magic u64 | version u32 | section count u32.
    for (std::size_t i = 0; i < 16 && i < bytes.size(); ++i)
        offs.push_back(i);
    std::size_t pos = 16;
    while (pos + 16 <= bytes.size()) {
        std::uint64_t len = 0;
        for (int i = 0; i < 8; ++i)
            len |= static_cast<std::uint64_t>(bytes[pos + 4 + i])
                   << (8 * i);
        // Frame fields (id, len, crc) and a spread of payload bytes.
        for (std::size_t i = 0; i < 16; ++i)
            offs.push_back(pos + i);
        const std::size_t payload = pos + 16;
        for (std::size_t i = 0; i < len;
             i += std::max<std::size_t>(1, len / 7))
            offs.push_back(payload + i);
        if (len > 0)
            offs.push_back(payload + len - 1);
        pos = payload + len;
    }
    return offs;
}

TEST(CkptSerializer, RejectsFlippedBytesInEverySection)
{
    const SimSnapshot snap = interpCheckpoint("crc", 3, 2'000);
    CkptWriter writer;
    writer.put(snap);
    const std::vector<std::uint8_t> clean = writer.bytes();

    for (const std::size_t off : interestingOffsets(clean)) {
        ASSERT_LT(off, clean.size());
        std::vector<std::uint8_t> bad = clean;
        bad[off] ^= 0x5a;
        CkptReader reader;
        SimSnapshot out;
        const bool ok = reader.parse(bad.data(), bad.size(), out);
        if (ok) {
            // A flip that survives parsing must still decode to the
            // original snapshot (e.g. it never happens with CRC over
            // every payload — assert so a framing hole shows up).
            EXPECT_TRUE(out == snap)
                << "flip at byte " << off
                << " parsed into a DIFFERENT snapshot";
            ADD_FAILURE() << "flip at byte " << off
                          << " was not rejected";
        } else {
            EXPECT_FALSE(reader.error().empty());
        }
    }
}

TEST(CkptSerializer, RejectsTruncationAtEveryBoundary)
{
    const SimSnapshot snap = interpCheckpoint("crc", 3, 2'000);
    CkptWriter writer;
    writer.put(snap);
    const std::vector<std::uint8_t> clean = writer.bytes();

    std::vector<std::size_t> lengths;
    for (std::size_t i = 0; i < 32 && i < clean.size(); ++i)
        lengths.push_back(i);
    for (const std::size_t off : interestingOffsets(clean))
        if (off < clean.size())
            lengths.push_back(off);
    for (const std::size_t len : lengths) {
        CkptReader reader;
        SimSnapshot out;
        EXPECT_FALSE(reader.parse(clean.data(), len, out))
            << "accepted a " << len << "-byte truncation of a "
            << clean.size() << "-byte image";
    }

    // Trailing garbage after a valid image is also rejected.
    std::vector<std::uint8_t> padded = clean;
    padded.push_back(0);
    CkptReader reader;
    SimSnapshot out;
    EXPECT_FALSE(reader.parse(padded.data(), padded.size(), out));
}

TEST(CkptSerializer, RejectsBadMagicAndVersion)
{
    const SimSnapshot snap = interpCheckpoint("crc", 1, 1'000);
    CkptWriter writer;
    writer.put(snap);

    std::vector<std::uint8_t> bad_magic = writer.bytes();
    bad_magic[0] ^= 0xff;
    CkptReader reader;
    SimSnapshot out;
    EXPECT_FALSE(reader.parse(bad_magic.data(), bad_magic.size(), out));
    EXPECT_NE(reader.error().find("magic"), std::string::npos)
        << reader.error();

    std::vector<std::uint8_t> bad_version = writer.bytes();
    bad_version[8] = 0xff; // schema version lives at bytes 8..11
    EXPECT_FALSE(
        reader.parse(bad_version.data(), bad_version.size(), out));
    EXPECT_NE(reader.error().find("version"), std::string::npos)
        << reader.error();

    EXPECT_FALSE(reader.parse(nullptr, 0, out));
}

// --------------------------------------------------------------------------
// CheckpointStore: hit/miss, durability, quarantine, LRU
// --------------------------------------------------------------------------

TEST(CheckpointStore, MissThenPublishThenHit)
{
    ScratchDir dir("ckpt_store_basic");
    CheckpointStore store(dir.str());
    const SimSnapshot snap = interpCheckpoint("compute", 1, 4'000);
    const SimConfig cfg = makeProfile(Profile::kOoo);
    const CkptKey key{"compute", 1, 4'000,
                      geometryFingerprint(cfg.memory,
                                          cfg.core.predictor)};

    SimSnapshot out;
    EXPECT_FALSE(store.load(key, out));
    EXPECT_FALSE(store.contains(key));

    const std::uint64_t published = store.store(key, snap);
    EXPECT_GT(published, 0u);
    EXPECT_TRUE(store.contains(key));
    EXPECT_EQ(store.entryCount(), 1u);
    EXPECT_EQ(store.totalBytes(), published);
    EXPECT_TRUE(fs::exists(store.indexPath()));

    std::uint64_t loaded_bytes = 0;
    ASSERT_TRUE(store.load(key, out, &loaded_bytes));
    EXPECT_EQ(loaded_bytes, published);
    EXPECT_TRUE(out == snap);
    EXPECT_EQ(store.stats().hits, 1u);
    EXPECT_EQ(store.stats().misses, 1u);
}

TEST(CheckpointStore, IndexSurvivesReopen)
{
    ScratchDir dir("ckpt_store_reopen");
    const SimSnapshot snap = interpCheckpoint("compute", 2, 3'000);
    const CkptKey key{"compute", 2, 3'000, 0x1234};
    {
        CheckpointStore store(dir.str());
        ASSERT_GT(store.store(key, snap), 0u);
    }
    CheckpointStore reopened(dir.str());
    EXPECT_EQ(reopened.entryCount(), 1u);
    SimSnapshot out;
    ASSERT_TRUE(reopened.load(key, out));
    EXPECT_TRUE(out == snap);
}

TEST(CheckpointStore, QuarantinesCorruptEntryAsMissThenHeals)
{
    ScratchDir dir("ckpt_store_quarantine");
    CheckpointStore store(dir.str());
    const SimSnapshot snap = interpCheckpoint("compute", 3, 2'000);
    const CkptKey key{"compute", 3, 2'000, 0xabcd};
    ASSERT_GT(store.store(key, snap), 0u);

    // Flip one byte in the middle of the published file.
    const fs::path entry = dir.path / key.fileName();
    ASSERT_TRUE(fs::exists(entry));
    {
        std::FILE *f = std::fopen(entry.string().c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, static_cast<long>(fs::file_size(entry) / 2),
                   SEEK_SET);
        const int c = std::fgetc(f);
        std::fseek(f, -1, SEEK_CUR);
        std::fputc(c ^ 0x40, f);
        std::fclose(f);
    }

    SimSnapshot out;
    EXPECT_FALSE(store.load(key, out))
        << "a corrupt entry must be a miss, not a hit";
    EXPECT_EQ(store.stats().quarantined, 1u);
    EXPECT_FALSE(fs::exists(entry));
    EXPECT_TRUE(fs::exists(dir.path / (key.fileName() + ".bad")));

    // The caller's rebuild-and-republish path heals the corpus.
    ASSERT_GT(store.store(key, snap), 0u);
    ASSERT_TRUE(store.load(key, out));
    EXPECT_TRUE(out == snap);
}

TEST(CheckpointStore, EvictsLeastRecentlyUsedUnderSizeCap)
{
    ScratchDir dir("ckpt_store_lru");
    const SimSnapshot snap = interpCheckpoint("compute", 4, 2'000);
    CkptWriter writer;
    writer.put(snap);
    const std::uint64_t entry_bytes = writer.bytes().size();

    // Cap fits two entries but not three.
    CheckpointStore store(dir.str(), entry_bytes * 2 + entry_bytes / 2);
    const CkptKey k1{"compute", 4, 2'000, 1};
    const CkptKey k2{"compute", 4, 2'000, 2};
    const CkptKey k3{"compute", 4, 2'000, 3};
    ASSERT_GT(store.store(k1, snap), 0u);
    ASSERT_GT(store.store(k2, snap), 0u);

    // Touch k1 so k2 is the LRU entry when k3 forces an eviction.
    SimSnapshot out;
    ASSERT_TRUE(store.load(k1, out));
    ASSERT_GT(store.store(k3, snap), 0u);

    EXPECT_EQ(store.entryCount(), 2u);
    EXPECT_GE(store.stats().evictions, 1u);
    EXPECT_TRUE(store.contains(k1));
    EXPECT_FALSE(store.contains(k2)) << "LRU entry must go first";
    EXPECT_TRUE(store.contains(k3));
    EXPECT_LE(store.totalBytes(), store.maxBytes());
    EXPECT_FALSE(store.load(k2, out));
}

TEST(CheckpointStore, GeometryFingerprintIgnoresLatencies)
{
    const SimConfig base = makeProfile(Profile::kOoo);
    SimConfig slower = base;
    slower.memory.dramLatency = 500;
    slower.memory.l2.hitLatency = 99;
    EXPECT_EQ(geometryFingerprint(base.memory, base.core.predictor),
              geometryFingerprint(slower.memory,
                                  slower.core.predictor));

    SimConfig small = base;
    small.memory.l1d.sizeBytes /= 2;
    EXPECT_NE(geometryFingerprint(base.memory, base.core.predictor),
              geometryFingerprint(small.memory,
                                  small.core.predictor));
    SimConfig btb = base;
    btb.core.predictor.btb.entries /= 2;
    EXPECT_NE(geometryFingerprint(base.memory, base.core.predictor),
              geometryFingerprint(btb.memory, btb.core.predictor));
}

// --------------------------------------------------------------------------
// Chained fast-forward: extension composes exactly
// --------------------------------------------------------------------------

TEST(ChainedCheckpoints, ExtendEqualsFromScratchBuild)
{
    const auto w = makeWorkload("mixed");
    const Program prog = w->build(6);
    const SimConfig cfg = makeProfile(Profile::kOoo);

    const SimSnapshot direct = buildWarmCheckpoint(
        prog, cfg.memory, cfg.core.predictor, 12'000);
    for (const std::uint64_t split : {1'000ull, 6'000ull, 11'999ull}) {
        const SimSnapshot base = buildWarmCheckpoint(
            prog, cfg.memory, cfg.core.predictor, split);
        const SimSnapshot chained =
            extendWarmCheckpoint(prog, base, 12'000);
        EXPECT_TRUE(chained == direct)
            << "extend(build(" << split << "), 12000) != build(12000)";
    }

    // Zero-length extension is the identity.
    const SimSnapshot same = extendWarmCheckpoint(prog, direct, 12'000);
    EXPECT_TRUE(same == direct);
}

TEST(ChainedCheckpoints, ExtendCarriesTaintLikeFromScratch)
{
    const auto w = makeWorkload("hashjoin");
    const Program prog = w->build(8);
    ASSERT_FALSE(prog.data.empty());
    SecretMap secrets;
    secrets.addMemRange(prog.data.front().base, 128, "secret");
    const SimConfig cfg = makeProfile(Profile::kStrict);

    TaintEngine dift_direct(secrets);
    const SimSnapshot direct = buildWarmCheckpoint(
        prog, cfg.memory, cfg.core.predictor, 10'000, &dift_direct);
    ASSERT_TRUE(direct.arch.hasTaint);

    TaintEngine dift_base(secrets);
    const SimSnapshot base = buildWarmCheckpoint(
        prog, cfg.memory, cfg.core.predictor, 4'000, &dift_base);
    TaintEngine dift_ext(secrets);
    const SimSnapshot chained =
        extendWarmCheckpoint(prog, base, 10'000, &dift_ext);
    EXPECT_TRUE(chained == direct)
        << "chained DIFT checkpoint diverged from from-scratch";
}

TEST(ChainedCheckpointsDeathTest, RejectsBackwardTarget)
{
    const auto w = makeWorkload("crc");
    const Program prog = w->build(1);
    const SimConfig cfg = makeProfile(Profile::kOoo);
    const SimSnapshot base = buildWarmCheckpoint(
        prog, cfg.memory, cfg.core.predictor, 5'000);
    EXPECT_DEATH(extendWarmCheckpoint(prog, base, 4'000), "before");
}

TEST(ChainedCheckpointsDeathTest, ChainedSamplingNeedsStride)
{
    SampleParams sp;
    sp.chainSamples = true;
    sp.fastforwardInsts = 0;
    EXPECT_DEATH(sp.validate(), "chain");
}

// --------------------------------------------------------------------------
// Grid integration: chained mode and the corpus preserve bit-identity
// --------------------------------------------------------------------------

void
expectIdentical(const std::vector<RunResult> &a,
                const std::vector<RunResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].mean.cpi, b[i].mean.cpi) << "cell " << i;
        EXPECT_EQ(a[i].mean.cycles, b[i].mean.cycles) << "cell " << i;
        EXPECT_EQ(a[i].cpiSamples, b[i].cpiSamples) << "cell " << i;
    }
}

SampleParams
chainedParams()
{
    SampleParams sp;
    sp.fastforwardInsts = 8'000; // stride
    sp.warmupInsts = 500;
    sp.measureInsts = 1'000;
    sp.samples = 3;
    sp.baseSeed = 21;
    sp.jobs = 2;
    sp.chainSamples = true;
    return sp;
}

TEST(ChainedGrid, SharedChainsEqualPerWindowRebuildsWithLessWork)
{
    std::vector<std::unique_ptr<Workload>> ws;
    ws.push_back(makeWorkload("crc"));
    ws.push_back(makeWorkload("stream"));
    const std::vector<SimConfig> configs{
        makeProfile(Profile::kOoo), makeProfile(Profile::kStrict),
        makeProfile(Profile::kInOrder)};

    const SampleParams shared = chainedParams();
    SampleParams rebuild = chainedParams();
    rebuild.reuseCheckpoints = false;

    GridStats shared_stats, rebuild_stats;
    const auto a =
        runGrid(ws, configs, shared, nullptr, &shared_stats);
    const auto b =
        runGrid(ws, configs, rebuild, nullptr, &rebuild_stats);
    expectIdentical(a, b);

    // One chain per workload: W*S builds whose *total* functional
    // work is one stride per sample, not s+1 strides per sample.
    EXPECT_EQ(shared_stats.ffRuns, ws.size() * shared.samples);
    EXPECT_EQ(shared_stats.ffInsts,
              ws.size() * shared.samples * shared.fastforwardInsts);
    EXPECT_EQ(shared_stats.ckptChainLen, shared.samples);
    // Rebuild mode fast-forwards 1+2+3 strides per workload per
    // config cell.
    EXPECT_GT(rebuild_stats.ffInsts, shared_stats.ffInsts);

    // And the parallel schedule cannot perturb chained results.
    SampleParams serial = chainedParams();
    serial.jobs = 1;
    expectIdentical(a, runGrid(ws, configs, serial));
}

TEST(ChainedGrid, WarmCorpusIsBitIdenticalAndSkipsFastForwards)
{
    ScratchDir dir("ckpt_grid_corpus");
    std::vector<std::unique_ptr<Workload>> ws;
    ws.push_back(makeWorkload("compute"));
    ws.push_back(makeWorkload("branchy"));
    const std::vector<SimConfig> configs{
        makeProfile(Profile::kOoo),
        makeProfile(Profile::kFullProtection)};
    const SampleParams sp = chainedParams();

    GridStats none_stats, cold_stats, warm_stats;
    const auto none = runGrid(ws, configs, sp, nullptr, &none_stats);

    CheckpointStore store(dir.str());
    const auto cold =
        runGrid(ws, configs, sp, nullptr, &cold_stats, &store);
    const auto warm =
        runGrid(ws, configs, sp, nullptr, &warm_stats, &store);

    expectIdentical(none, cold);
    expectIdentical(none, warm);

    const std::uint64_t n_ckpts = ws.size() * sp.samples;
    EXPECT_EQ(cold_stats.ckptHits, 0u);
    EXPECT_EQ(cold_stats.ckptMisses, n_ckpts);
    EXPECT_GT(cold_stats.ckptBytes, 0u);
    EXPECT_EQ(warm_stats.ckptHits, n_ckpts);
    EXPECT_EQ(warm_stats.ckptMisses, 0u);
    EXPECT_EQ(warm_stats.ffRuns, 0u)
        << "a warm corpus must eliminate every fast-forward";
    EXPECT_EQ(warm_stats.ffInsts, 0u);
    EXPECT_EQ(store.entryCount(), n_ckpts);
}

TEST(ChainedGrid, NonChainedCorpusAlsoHitsAcrossRuns)
{
    ScratchDir dir("ckpt_grid_corpus_classic");
    std::vector<std::unique_ptr<Workload>> ws;
    ws.push_back(makeWorkload("crc"));
    const std::vector<SimConfig> configs{makeProfile(Profile::kOoo)};
    SampleParams sp = chainedParams();
    sp.chainSamples = false; // classic independently-seeded samples

    CheckpointStore store(dir.str());
    GridStats cold_stats, warm_stats;
    const auto cold =
        runGrid(ws, configs, sp, nullptr, &cold_stats, &store);
    const auto warm =
        runGrid(ws, configs, sp, nullptr, &warm_stats, &store);
    expectIdentical(cold, warm);
    EXPECT_EQ(cold_stats.ckptMisses, sp.samples);
    EXPECT_EQ(warm_stats.ckptHits, sp.samples);
    EXPECT_EQ(warm_stats.ckptChainLen, 0u);
}

TEST(ChainedGrid, StructurallyIncompatibleCorpusEntryIsRebuilt)
{
    ScratchDir dir("ckpt_grid_gate");
    std::vector<std::unique_ptr<Workload>> ws;
    ws.push_back(makeWorkload("compute"));
    const std::vector<SimConfig> configs{makeProfile(Profile::kOoo)};
    SampleParams sp = chainedParams();
    sp.samples = 1;

    // Poison the corpus: under the EXACT key the grid will probe,
    // publish a snapshot built with a different cache geometry
    // (simulating a fingerprint collision or a tampered index).
    const std::uint64_t grid_fp = geometryFingerprint(
        configs[0].memory, configs[0].core.predictor);
    SimConfig other = configs[0];
    other.memory.l1d.sizeBytes /= 2;
    const Program prog = ws[0]->build(sp.baseSeed);
    const SimSnapshot wrong = buildWarmCheckpoint(
        prog, other.memory, other.core.predictor,
        sp.fastforwardInsts);
    CheckpointStore store(dir.str());
    const CkptKey key{"compute", sp.baseSeed, sp.fastforwardInsts,
                      grid_fp};
    ASSERT_GT(store.store(key, wrong), 0u);

    // The grid must refuse the hit, rebuild, and produce exactly the
    // no-corpus results — never restore mismatched tags.
    const auto clean = runGrid(ws, configs, sp);
    GridStats stats;
    const auto gated =
        runGrid(ws, configs, sp, nullptr, &stats, &store);
    expectIdentical(clean, gated);
    EXPECT_EQ(stats.ckptHits, 0u);
    EXPECT_EQ(stats.ckptMisses, 1u);
    EXPECT_EQ(stats.ffRuns, 1u);

    // The rebuild republished a compatible entry: now it hits.
    SimSnapshot healed;
    ASSERT_TRUE(store.load(key, healed));
    EXPECT_TRUE(healed.structurallyCompatible(configs[0]));
}

} // namespace
} // namespace nda
