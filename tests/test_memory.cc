/**
 * @file
 * Tests for the memory substrate: sparse memory map with permissions,
 * the set-associative cache, and the two-level hierarchy timing.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/memory_map.hh"

namespace nda {
namespace {

TEST(MemoryMap, ReadWriteSizes)
{
    MemoryMap m;
    m.write(0x100, 0x1122334455667788ULL, 8);
    EXPECT_EQ(m.read(0x100, 8), 0x1122334455667788ULL);
    EXPECT_EQ(m.read(0x100, 4), 0x55667788u);
    EXPECT_EQ(m.read(0x104, 4), 0x11223344u);
    EXPECT_EQ(m.read(0x100, 1), 0x88u);
}

TEST(MemoryMap, UnmappedReadsZero)
{
    MemoryMap m;
    EXPECT_EQ(m.read(0xABCDE, 8), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(MemoryMap, CrossPageAccess)
{
    MemoryMap m;
    const Addr boundary = 2 * MemoryMap::kPageBytes - 4;
    m.write(boundary, 0xAABBCCDDEEFF0011ULL, 8);
    EXPECT_EQ(m.read(boundary, 8), 0xAABBCCDDEEFF0011ULL);
    EXPECT_EQ(m.pageCount(), 2u);
}

TEST(MemoryMap, BulkBytes)
{
    MemoryMap m;
    const std::uint8_t bytes[] = {1, 2, 3, 4, 5};
    m.writeBytes(0x7FFE, bytes, 5); // crosses a page
    std::uint8_t out[5] = {};
    m.readBytes(0x7FFE, out, 5);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(out[i], bytes[i]);
}

TEST(MemoryMap, PermissionsPerPage)
{
    MemoryMap m;
    m.setPerm(0x4000, 100, MemPerm::kKernel);
    EXPECT_EQ(m.permAt(0x4000), MemPerm::kKernel);
    EXPECT_EQ(m.permAt(0x4000 + MemoryMap::kPageBytes), MemPerm::kUser);
    EXPECT_FALSE(m.accessAllowed(0x4000, 1, CpuMode::kUser));
    EXPECT_TRUE(m.accessAllowed(0x4000, 1, CpuMode::kKernel));
    // Access touching both a user and a kernel page is denied.
    EXPECT_FALSE(m.accessAllowed(0x4000 - 2, 4, CpuMode::kUser));
}

TEST(MemoryMap, ClearDropsEverything)
{
    MemoryMap m;
    m.write(0x100, 42, 8);
    m.setPerm(0x100, 8, MemPerm::kKernel);
    m.clear();
    EXPECT_EQ(m.read(0x100, 8), 0u);
    EXPECT_EQ(m.permAt(0x100), MemPerm::kUser);
}

CacheParams
tinyCache()
{
    CacheParams p;
    p.name = "tiny";
    p.sizeBytes = 4 * 64;  // 4 lines
    p.ways = 2;            // 2 sets x 2 ways
    p.lineBytes = 64;
    p.hitLatency = 4;
    return p;
}

TEST(Cache, MissThenHit)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.access(0x0));
    EXPECT_TRUE(c.access(0x0));
    EXPECT_TRUE(c.access(0x3F)) << "same line";
    EXPECT_FALSE(c.access(0x40)) << "next line";
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    Cache c(tinyCache()); // set = (addr/64) % 2
    // Lines 0x000, 0x080, 0x100 all map to set 0 (2 ways).
    c.access(0x000);
    c.access(0x080);
    c.access(0x000);      // refresh 0x000 -> LRU victim is 0x080
    c.access(0x100);      // evicts 0x080
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x080));
    EXPECT_TRUE(c.probe(0x100));
}

TEST(Cache, ProbeDoesNotMutate)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_FALSE(c.probe(0x0)) << "probe must not allocate";
    c.access(0x000);
    c.access(0x080);
    // Probing 0x000 must not refresh its LRU position:
    c.probe(0x000);
    c.access(0x100); // should evict 0x000 (the true LRU)
    EXPECT_FALSE(c.probe(0x000));
    EXPECT_TRUE(c.probe(0x080));
}

TEST(Cache, FlushInvalidates)
{
    Cache c(tinyCache());
    c.access(0x0);
    c.flush(0x0);
    EXPECT_FALSE(c.probe(0x0));
    c.access(0x0);
    c.flushAll();
    EXPECT_FALSE(c.probe(0x0));
}

TEST(Cache, FillWithoutAccessCounting)
{
    Cache c(tinyCache());
    c.fill(0x0);
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Hierarchy, Table3Latencies)
{
    MemHierarchy h;
    // Cold: L2 round trip + DRAM = 140 cycles (paper: ~140-cycle
    // cache-channel signal, Fig 4).
    auto r1 = h.dataAccess(0x1000);
    EXPECT_EQ(r1.level, HitLevel::kMemory);
    EXPECT_EQ(r1.latency, 140u);
    // Now in L1.
    auto r2 = h.dataAccess(0x1000);
    EXPECT_EQ(r2.level, HitLevel::kL1);
    EXPECT_EQ(r2.latency, 4u);
    // Evict from L1 only -> L2 hit at 40.
    h.l1d().flush(0x1000);
    auto r3 = h.dataAccess(0x1000);
    EXPECT_EQ(r3.level, HitLevel::kL2);
    EXPECT_EQ(r3.latency, 40u);
}

TEST(Hierarchy, PeekIsInvisible)
{
    MemHierarchy h;
    auto p1 = h.dataPeek(0x2000);
    EXPECT_EQ(p1.level, HitLevel::kMemory);
    // The peek must not have filled anything:
    auto p2 = h.dataPeek(0x2000);
    EXPECT_EQ(p2.level, HitLevel::kMemory);
    EXPECT_FALSE(h.l1d().probe(0x2000));
    EXPECT_FALSE(h.l2().probe(0x2000));
}

TEST(Hierarchy, FillThenPeekHits)
{
    MemHierarchy h;
    h.dataFill(0x3000);
    EXPECT_EQ(h.dataPeek(0x3000).level, HitLevel::kL1);
}

TEST(Hierarchy, FlushLineRemovesAllLevels)
{
    MemHierarchy h;
    h.dataAccess(0x4000);
    h.flushLine(0x4000);
    EXPECT_EQ(h.dataPeek(0x4000).level, HitLevel::kMemory);
}

TEST(Hierarchy, InstAndDataAreSplitL1)
{
    MemHierarchy h;
    h.instAccess(0x5000);
    // The same line is not in the L1D (split caches), but it is in
    // the unified L2.
    EXPECT_FALSE(h.l1d().probe(0x5000));
    EXPECT_EQ(h.dataPeek(0x5000).level, HitLevel::kL2);
}

TEST(Hierarchy, OffChipPredicate)
{
    AccessResult r;
    r.level = HitLevel::kMemory;
    EXPECT_TRUE(r.offChip());
    r.level = HitLevel::kL2;
    EXPECT_FALSE(r.offChip());
}

} // namespace
} // namespace nda
