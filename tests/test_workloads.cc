/**
 * @file
 * Tests of the synthetic SPEC-2017-substitute workload suite:
 * build-ability, determinism, long-running behaviour, architectural
 * agreement between cores, and the behavioural diversity the Fig 7
 * evaluation depends on.
 */

#include <gtest/gtest.h>

#include "core/core_factory.hh"
#include "harness/profiles.hh"
#include "harness/runner.hh"
#include "isa/interpreter.hh"
#include "workloads/workload.hh"

namespace nda {
namespace {

class WorkloadTest : public ::testing::TestWithParam<int>
{
  protected:
    std::unique_ptr<Workload>
    workload() const
    {
        auto all = makeAllWorkloads();
        return std::move(all[static_cast<std::size_t>(GetParam())]);
    }
};

TEST_P(WorkloadTest, BuildsAndRunsLong)
{
    auto w = workload();
    const Program p = w->build(1);
    EXPECT_FALSE(p.code.empty());
    auto core = makeCore(p, makeProfile(Profile::kOoo));
    core->run(50'000, ~Cycle{0});
    EXPECT_FALSE(core->halted())
        << w->name() << " must run far beyond the measurement window";
    EXPECT_EQ(core->committedInsts(), 50'000u);
}

TEST_P(WorkloadTest, DeterministicForSeed)
{
    auto w = workload();
    const Program p1 = w->build(3);
    const Program p2 = w->build(3);
    ASSERT_EQ(p1.code.size(), p2.code.size());
    ASSERT_EQ(p1.data.size(), p2.data.size());
    for (std::size_t i = 0; i < p1.data.size(); ++i)
        EXPECT_TRUE(p1.data[i].bytes == p2.data[i].bytes);

    SampleParams sp;
    sp.warmupInsts = 5'000;
    sp.measureInsts = 20'000;
    const auto a = runWindow(*w, makeProfile(Profile::kOoo), 3, sp);
    const auto c = runWindow(*w, makeProfile(Profile::kOoo), 3, sp);
    EXPECT_EQ(a.cycles, c.cycles) << "same seed, same timing";
}

TEST_P(WorkloadTest, SeedsChangeData)
{
    auto w = workload();
    const Program p1 = w->build(1);
    const Program p2 = w->build(2);
    bool any_diff = false;
    for (std::size_t i = 0;
         i < p1.data.size() && i < p2.data.size(); ++i) {
        any_diff |= p1.data[i].bytes != p2.data[i].bytes;
    }
    EXPECT_TRUE(any_diff) << w->name();
}

TEST_P(WorkloadTest, OooMatchesInterpreterPrefix)
{
    // Run a fixed instruction count on both; since workloads have no
    // faults or timing-dependent values, register state at the same
    // instruction boundary is comparable only at identical counts.
    // Instead we check memory side effects after the OoO run against
    // an interpreter run of the same length.
    auto w = workload();
    const Program p = w->build(5);
    Interpreter ref(p);
    ref.run(30'000);
    ASSERT_FALSE(ref.halted());

    auto core = makeCore(p, makeProfile(Profile::kFullProtection));
    core->run(30'000, ~Cycle{0});
    ASSERT_FALSE(core->halted());
    ASSERT_EQ(core->committedInsts(), ref.instCount());
    // Committed architectural registers must agree at the boundary.
    for (RegId r = 0; r < kNumArchRegs; ++r) {
        EXPECT_EQ(core->archReg(r), ref.reg(r))
            << w->name() << " r" << int(r);
    }
}

TEST_P(WorkloadTest, HasSpecAnalog)
{
    auto w = workload();
    EXPECT_FALSE(w->specAnalog().empty());
    EXPECT_FALSE(w->name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadTest, ::testing::Range(0, 16),
    [](const auto &info) {
        auto all = makeAllWorkloads();
        return all[static_cast<std::size_t>(info.param)]->name();
    });

TEST(WorkloadSuite, SixteenUniqueKernels)
{
    auto all = makeAllWorkloads();
    ASSERT_EQ(all.size(), 16u);
    for (std::size_t i = 0; i < all.size(); ++i) {
        for (std::size_t j = i + 1; j < all.size(); ++j)
            EXPECT_NE(all[i]->name(), all[j]->name());
    }
}

TEST(WorkloadSuite, LookupByName)
{
    EXPECT_NE(makeWorkload("ptrchase"), nullptr);
    EXPECT_NE(makeWorkload("crc"), nullptr);
    EXPECT_EQ(makeWorkload("nope"), nullptr);
}

TEST(WorkloadSuite, BehaviouralDiversity)
{
    // The suite must span the axes Fig 7 depends on: at least one
    // kernel with high mispredict rate, one with ~zero, one
    // DRAM-bound (high MLP), and one with ILP > 2.
    SampleParams sp;
    sp.warmupInsts = 10'000;
    sp.measureInsts = 30'000;
    double max_mispredict = 0.0, min_mispredict = 1.0;
    double max_mlp = 0.0, max_ilp = 0.0;
    for (auto &w : makeAllWorkloads()) {
        const auto s = runWindow(*w, makeProfile(Profile::kOoo), 1, sp);
        max_mispredict = std::max(max_mispredict, s.condMispredictRate);
        min_mispredict = std::min(min_mispredict, s.condMispredictRate);
        max_mlp = std::max(max_mlp, s.mlp);
        max_ilp = std::max(max_ilp, s.ilp);
    }
    EXPECT_GT(max_mispredict, 0.10);
    EXPECT_LT(min_mispredict, 0.01);
    EXPECT_GT(max_mlp, 3.0);
    EXPECT_GT(max_ilp, 2.0);
}

} // namespace
} // namespace nda
