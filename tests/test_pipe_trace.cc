/**
 * @file
 * Tests of the pipeline trace facility: event ordering invariants,
 * squash/commit classification, the NDA-visible complete-to-broadcast
 * gap, and rendering.
 */

#include <gtest/gtest.h>

#include "core/ooo_core.hh"
#include "debug/pipe_trace.hh"
#include "harness/profiles.hh"
#include "isa/program.hh"

namespace nda {
namespace {

Program
tracedProgram()
{
    ProgramBuilder b("traced");
    b.word(0x1000, 5);
    b.word(0x2000, 9);
    b.movi(9, 0x2000);
    b.prefetch(9, 0);
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.fence();
    b.load(2, 1, 0, 8);              // slow condition
    b.movi(3, 100);
    auto skip = b.futureLabel();
    b.bgeu(2, 3, skip);              // not taken; slow resolve
    b.movi(4, 0x2000);
    b.load(5, 4, 0, 8);              // unsafe under permissive
    b.muli(6, 5, 3);
    b.bind(skip);
    b.halt();
    return b.build();
}

TEST(PipeTrace, EventOrderingInvariants)
{
    PipeTrace trace;
    OooCore core(tracedProgram(), makeProfile(Profile::kOoo));
    core.setRetireHook(trace.hook());
    core.run(~std::uint64_t{0}, 100000);
    ASSERT_TRUE(core.halted());
    ASSERT_FALSE(trace.records().empty());

    for (const auto &r : trace.committedRecords()) {
        EXPECT_LE(r.fetched, r.dispatched) << r.disasm;
        if (r.issued > 0) {
            EXPECT_LE(r.dispatched, r.issued) << r.disasm;
            EXPECT_LE(r.issued, r.completed) << r.disasm;
        }
        EXPECT_LE(r.completed, r.retired) << r.disasm;
        EXPECT_FALSE(r.squashed);
    }
}

TEST(PipeTrace, CommitCountMatchesCore)
{
    PipeTrace trace;
    OooCore core(tracedProgram(), makeProfile(Profile::kOoo));
    core.setRetireHook(trace.hook());
    core.run(~std::uint64_t{0}, 100000);
    EXPECT_EQ(trace.committedRecords().size(),
              core.committedInsts());
}

TEST(PipeTrace, SquashedInstructionsRecorded)
{
    // The slow mispredicted-looking branch in the program squashes
    // wrong-path work under OoO? Here the branch is predicted
    // not-taken and IS not-taken, so force a squash with a
    // data-dependent 50/50 branch program instead.
    ProgramBuilder b("squashy");
    b.movi(1, 0);
    b.movi(2, 300);
    auto loop = b.label();
    b.muli(3, 1, 0x9E3779B1);
    b.andi(3, 3, 1);
    b.movi(4, 0);
    auto skip = b.futureLabel();
    b.bne(3, 4, skip);
    b.addi(5, 5, 1);
    b.bind(skip);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    PipeTrace trace(100000);
    OooCore core(b.build(), makeProfile(Profile::kOoo));
    core.setRetireHook(trace.hook());
    core.run(~std::uint64_t{0}, 1'000'000);
    ASSERT_TRUE(core.halted());
    std::size_t squashed = 0;
    for (const auto &r : trace.records())
        squashed += r.squashed;
    EXPECT_GT(squashed, 0u) << "mispredicts must record squashes";
    EXPECT_EQ(trace.records().size() - squashed,
              core.committedInsts());
}

TEST(PipeTrace, NdaGapVisibleUnderPermissive)
{
    PipeTrace trace;
    OooCore core(tracedProgram(), makeProfile(Profile::kPermissive));
    core.setRetireHook(trace.hook());
    core.run(~std::uint64_t{0}, 100000);
    ASSERT_TRUE(core.halted());

    bool saw_gap = false;
    for (const auto &r : trace.committedRecords()) {
        if (r.wasUnsafe && r.broadcasted > r.completed + 10)
            saw_gap = true;
    }
    EXPECT_TRUE(saw_gap)
        << "the unsafe load must show a complete-to-broadcast gap";
}

TEST(PipeTrace, NoGapOnBaseline)
{
    PipeTrace trace;
    OooCore core(tracedProgram(), makeProfile(Profile::kOoo));
    core.setRetireHook(trace.hook());
    core.run(~std::uint64_t{0}, 100000);
    for (const auto &r : trace.committedRecords()) {
        EXPECT_FALSE(r.wasUnsafe) << r.disasm;
        if (r.broadcasted > 0 && r.completed > 0) {
            EXPECT_LE(r.broadcasted, r.completed + 2)
                << r.disasm
                << ": baseline broadcasts at completion";
        }
    }
}

TEST(PipeTrace, RenderProducesRows)
{
    PipeTrace trace;
    OooCore core(tracedProgram(), makeProfile(Profile::kStrict));
    core.setRetireHook(trace.hook());
    core.run(~std::uint64_t{0}, 100000);
    const std::string out = trace.render(0, 10);
    EXPECT_NE(out.find("cycles"), std::string::npos);
    EXPECT_NE(out.find('f'), std::string::npos);
    EXPECT_NE(out.find('r'), std::string::npos);
    // At least one row flagged unsafe under strict propagation.
    EXPECT_NE(out.find("  U"), std::string::npos);
}

TEST(PipeTrace, CapacityBounded)
{
    PipeTrace trace(16);
    ProgramBuilder b("long");
    b.movi(1, 0);
    b.movi(2, 500);
    auto loop = b.label();
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    OooCore core(b.build(), makeProfile(Profile::kOoo));
    core.setRetireHook(trace.hook());
    core.run(~std::uint64_t{0}, 1'000'000);
    EXPECT_LE(trace.records().size(), 16u);
}

TEST(PipeTrace, EmptyRender)
{
    PipeTrace trace;
    EXPECT_EQ(trace.render(), "(no trace records)\n");
}

} // namespace
} // namespace nda
