/**
 * @file
 * Tests of the non-blocking memory hierarchy: the MSHR file itself
 * (coalescing, wakeup order, backpressure, squash orphaning), the
 * hierarchy-level request path, and the end-to-end timing properties
 * the model exists for — memory-level parallelism strictly improves
 * CPI on independent-miss kernels, changes nothing on compute-bound
 * ones, and mshrEntries = 1 reproduces the legacy blocking numbers on
 * the in-order core.
 */

#include <gtest/gtest.h>

#include "core/inorder_core.hh"
#include "core/ooo_core.hh"
#include "isa/interpreter.hh"
#include "isa/program.hh"
#include "mem/hierarchy.hh"
#include "mem/mshr.hh"

namespace nda {
namespace {

constexpr unsigned kL1Lat = 4;
constexpr unsigned kL2Lat = 40;
constexpr unsigned kDramLat = 100;
constexpr unsigned kMissLat = kL2Lat + kDramLat;

HierarchyParams
mshrParams(unsigned entries, unsigned targets = 8)
{
    HierarchyParams p;
    p.mshrEntries = entries;
    p.mshrTargets = targets;
    return p;
}

// --- Mshr file unit tests ----------------------------------------------

TEST(Mshr, TakeReadyDrainsInFillThenAllocOrder)
{
    Mshr file("t", 4, 8);
    file.allocate(3, 50, {1, MshrTargetKind::kLoad});
    file.allocate(1, 20, {2, MshrTargetKind::kLoad});
    file.allocate(2, 20, {3, MshrTargetKind::kLoad});

    // Nothing due yet.
    EXPECT_TRUE(file.takeReady(19).empty());
    EXPECT_EQ(file.occupancy(), 3u);

    // Both fillAt=20 entries drain, in allocation order.
    const auto ready = file.takeReady(20);
    ASSERT_EQ(ready.size(), 2u);
    EXPECT_EQ(ready[0].lineAddr, 1u);
    EXPECT_EQ(ready[1].lineAddr, 2u);
    EXPECT_EQ(file.occupancy(), 1u);

    const auto rest = file.takeReady(100);
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0].lineAddr, 3u);
    EXPECT_TRUE(file.empty());
}

TEST(Mshr, TargetListBackpressure)
{
    Mshr file("t", 2, 2);
    MshrEntry &e = file.allocate(7, 30, {1, MshrTargetKind::kLoad});
    EXPECT_TRUE(file.addTarget(e, {2, MshrTargetKind::kLoad}));
    EXPECT_FALSE(file.addTarget(e, {3, MshrTargetKind::kLoad}))
        << "target list capacity is 2";
    EXPECT_EQ(file.secondaryMerges(), 1u);
    EXPECT_EQ(file.fullStalls(), 1u);
    EXPECT_EQ(e.targets.size(), 2u);
}

TEST(Mshr, SquashDropsOnlyYoungLoadTargets)
{
    Mshr file("t", 4, 8);
    MshrEntry &e = file.allocate(7, 30, {10, MshrTargetKind::kLoad});
    file.addTarget(e, {20, MshrTargetKind::kLoad});
    file.addTarget(e, {25, MshrTargetKind::kStore});
    file.addTarget(e, {kInvalidSeqNum, MshrTargetKind::kFetch});

    file.squashLoadTargets(15);

    // The young load is gone; the old load, the store (already
    // committed), and the fetch target survive — as does the entry.
    ASSERT_EQ(file.occupancy(), 1u);
    const auto &targets = file.entries().front().targets;
    ASSERT_EQ(targets.size(), 3u);
    EXPECT_EQ(targets[0].seq, 10u);
    EXPECT_EQ(targets[1].kind, MshrTargetKind::kStore);
    EXPECT_EQ(targets[2].kind, MshrTargetKind::kFetch);
}

// --- hierarchy request path --------------------------------------------

TEST(MshrHierarchy, PrimaryThenCoalesceThenHit)
{
    MemHierarchy hier(mshrParams(4));
    const Addr addr = 0x100000;

    // Cold DRAM miss: full round trip, entry allocated.
    const MemRequestResult miss = hier.dataRequest(
        addr, 10, 1, MshrTargetKind::kLoad);
    EXPECT_EQ(miss.status, MemReqStatus::kMiss);
    EXPECT_EQ(miss.latency, kMissLat);
    EXPECT_TRUE(miss.offChip());

    // Same line 30 cycles later: coalesced, shorter wait, no second
    // entry in either file.
    const MemRequestResult merged = hier.dataRequest(
        addr + 8, 40, 2, MshrTargetKind::kLoad);
    EXPECT_EQ(merged.status, MemReqStatus::kMerged);
    EXPECT_EQ(merged.latency, kMissLat - 30);
    EXPECT_TRUE(merged.offChip());
    EXPECT_EQ(hier.mshrData().occupancy(), 1u);
    EXPECT_EQ(hier.mshrL2().occupancy(), 1u);
    EXPECT_EQ(hier.mshrData().secondaryMerges(), 1u);

    // The tags must not hold the line until the fill is due...
    hier.advance(10 + kMissLat - 1);
    EXPECT_FALSE(hier.l1d().probe(addr));

    // ...and must hold it afterwards: the request path sees a hit.
    hier.advance(10 + kMissLat);
    EXPECT_TRUE(hier.mshrDrained());
    const MemRequestResult hit = hier.dataRequest(
        addr, 10 + kMissLat, 3, MshrTargetKind::kLoad);
    EXPECT_EQ(hit.status, MemReqStatus::kHit);
    EXPECT_EQ(hit.latency, kL1Lat);
}

TEST(MshrHierarchy, FullFileRejectsWithoutMutating)
{
    MemHierarchy hier(mshrParams(2));
    EXPECT_EQ(hier.dataRequest(0x100000, 0, 1, MshrTargetKind::kLoad)
                  .status,
              MemReqStatus::kMiss);
    EXPECT_EQ(hier.dataRequest(0x200000, 0, 2, MshrTargetKind::kLoad)
                  .status,
              MemReqStatus::kMiss);

    const std::uint64_t hits = hier.l1d().hits();
    const std::uint64_t misses = hier.l1d().misses();
    const MemRequestResult rej = hier.dataRequest(
        0x300000, 1, 3, MshrTargetKind::kLoad);
    EXPECT_TRUE(rej.rejected());
    EXPECT_EQ(hier.mshrData().fullStalls(), 1u);
    // A rejected request must leave no trace: the retry recomputes
    // from scratch.
    EXPECT_EQ(hier.l1d().hits(), hits);
    EXPECT_EQ(hier.l1d().misses(), misses);
    EXPECT_EQ(hier.mshrData().occupancy(), 2u);

    // Draining frees the slot and the retry succeeds.
    hier.advance(kMissLat);
    EXPECT_EQ(hier.dataRequest(0x300000, kMissLat, 3,
                               MshrTargetKind::kLoad)
                  .status,
              MemReqStatus::kMiss);
}

TEST(MshrHierarchy, SquashOrphansTheFill)
{
    MemHierarchy hier(mshrParams(4));
    const Addr addr = 0x100000;
    hier.dataRequest(addr, 0, 100, MshrTargetKind::kLoad);

    // Squash everything younger than seq 50: the target vanishes but
    // the entry stays behind as an orphan.
    hier.squashLoadTargets(50);
    ASSERT_EQ(hier.mshrData().occupancy(), 1u);
    EXPECT_TRUE(hier.mshrData().entries().front().targets.empty());

    // The wrong-path fill still lands — the squash-surviving cache
    // channel the NDA policies are measured against.
    hier.advance(kMissLat);
    EXPECT_TRUE(hier.l1d().probe(addr));
    EXPECT_TRUE(hier.l2().probe(addr));
}

TEST(MshrHierarchy, InstAndDataShareOneDramFetch)
{
    MemHierarchy hier(mshrParams(4));
    const Addr addr = 0x100000;
    const MemRequestResult ifetch = hier.instRequest(addr, 0);
    EXPECT_EQ(ifetch.status, MemReqStatus::kMiss);

    // A data request to the same line coalesces onto the in-flight L2
    // fill the instruction side started.
    const MemRequestResult merged = hier.dataRequest(
        addr, 5, 1, MshrTargetKind::kLoad);
    EXPECT_EQ(merged.status, MemReqStatus::kMerged);
    EXPECT_EQ(merged.latency, kMissLat - 5);
    EXPECT_EQ(hier.mshrL2().occupancy(), 1u);

    hier.advance(kMissLat);
    EXPECT_TRUE(hier.l1i().probe(addr));
    EXPECT_TRUE(hier.l1d().probe(addr));
}

TEST(MshrHierarchy, MidMissSaveConvergesAndRoundTrips)
{
    MemHierarchy hier(mshrParams(4));
    hier.dataRequest(0x100000, 0, 1, MshrTargetKind::kLoad);
    hier.dataRequest(0x200000, 3, 2, MshrTargetKind::kLoad);
    ASSERT_FALSE(hier.mshrDrained());

    // save() drains the in-flight fills into the captured image...
    const MemHierarchy::Snapshot snap = hier.save();

    // ...which equals the state the live hierarchy converges to.
    hier.advance(kMissLat + 3);
    ASSERT_TRUE(hier.mshrDrained());
    EXPECT_EQ(hier.save(), snap);

    // And restore -> save round-trips bit-exact.
    MemHierarchy fresh(mshrParams(4));
    fresh.restore(snap);
    EXPECT_EQ(fresh.save(), snap);
}

// --- end-to-end timing on the cores ------------------------------------

/** `iters` iterations of four independent cold-miss loads (64 B
 *  stride over an unmapped, never-revisited region: every load is a
 *  DRAM miss and reads 0). The MLP test substrate. */
Program
strideLoads(unsigned iters)
{
    ProgramBuilder b("stride");
    b.movi(1, 0x400000);
    b.movi(2, iters);
    b.movi(3, 0);
    auto loop = b.label();
    b.load(4, 1, 0, 8);
    b.load(5, 1, 64, 8);
    b.load(6, 1, 128, 8);
    b.load(7, 1, 192, 8);
    b.addi(1, 1, 256);
    b.addi(3, 3, 1);
    b.blt(3, 2, loop);
    b.halt();
    return b.build();
}

Program
aluLoop(unsigned iters)
{
    ProgramBuilder b("alu");
    b.movi(1, 0);
    b.movi(2, iters);
    b.movi(3, 0);
    auto loop = b.label();
    b.add(3, 3, 1);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.build();
}

Cycle
runOooCycles(const Program &p, unsigned mshr_entries,
             std::uint64_t *committed = nullptr)
{
    SimConfig cfg;
    cfg.memory.mshrEntries = mshr_entries;
    OooCore core(p, cfg);
    core.run(~std::uint64_t{0}, 10'000'000);
    EXPECT_TRUE(core.halted());
    if (committed)
        *committed = core.committedInsts();
    return core.cycle();
}

TEST(MshrTiming, OooMlpStrictlyImprovesMemoryBoundCpi)
{
    const Program p = strideLoads(64);
    std::uint64_t committed1 = 0, committed8 = 0;
    const Cycle blocking = runOooCycles(p, 1, &committed1);
    const Cycle mlp = runOooCycles(p, 8, &committed8);
    EXPECT_EQ(committed1, committed8);
    EXPECT_LT(mlp, blocking)
        << "independent misses must overlap with 8 MSHRs";
    // Four independent DRAM misses per iteration should overlap
    // almost fully: demand well over 2x, not a rounding artifact.
    EXPECT_LT(2 * mlp, blocking);
}

TEST(MshrTiming, OooComputeBoundUnchanged)
{
    const Program p = aluLoop(2000);
    const Cycle legacy = runOooCycles(p, 0);
    const Cycle mlp = runOooCycles(p, 8);
    EXPECT_EQ(legacy, mlp)
        << "MSHRs are a memory-timing knob; ALU-bound code must not "
           "move";
}

TEST(MshrTiming, OooArchStateMatchesInterpreter)
{
    const Program p = strideLoads(16);
    Interpreter ref(p);
    ref.run(1'000'000);
    SimConfig cfg;
    cfg.memory.mshrEntries = 8;
    OooCore core(p, cfg);
    core.run(~std::uint64_t{0}, 10'000'000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.committedInsts(), ref.instCount());
    for (int r = 0; r < kNumArchRegs; ++r)
        EXPECT_EQ(core.archReg(r), ref.reg(r)) << "r" << r;
}

/** Mixed load/store/ALU kernel for the in-order equivalence check. */
Program
mixedKernel(unsigned iters)
{
    ProgramBuilder b("mixed");
    b.zeroSegment(0x10000, 8192);
    b.movi(1, 0x10000);
    b.movi(2, iters);
    b.movi(3, 0);
    auto loop = b.label();
    b.load(4, 1, 0, 8);
    b.addi(4, 4, 3);
    b.store(1, 64, 4, 8);
    b.load(5, 1, 4096, 8);
    b.addi(1, 1, 128);
    b.addi(3, 3, 1);
    b.blt(3, 2, loop);
    b.halt();
    return b.build();
}

TEST(MshrTiming, InOrderBlockingReproducesLegacyNumbers)
{
    // The blocking core stalls for every miss's full latency, so
    // routing it through one MSHR entry must change nothing the model
    // reports: cycles, commits, per-level hit/miss/fill counts, and
    // architectural state.
    const Program p = mixedKernel(30);
    SimConfig legacy_cfg, mshr_cfg;
    legacy_cfg.inOrder = mshr_cfg.inOrder = true;
    mshr_cfg.memory.mshrEntries = 1;

    InOrderCore legacy(p, legacy_cfg);
    InOrderCore blocking(p, mshr_cfg);
    legacy.run(~std::uint64_t{0}, 10'000'000);
    blocking.run(~std::uint64_t{0}, 10'000'000);
    ASSERT_TRUE(legacy.halted());
    ASSERT_TRUE(blocking.halted());

    EXPECT_EQ(blocking.cycle(), legacy.cycle());
    EXPECT_EQ(blocking.committedInsts(), legacy.committedInsts());
    for (int r = 0; r < kNumArchRegs; ++r)
        EXPECT_EQ(blocking.archReg(r), legacy.archReg(r)) << "r" << r;

    MemHierarchy &lh = legacy.hierarchy();
    MemHierarchy &bh = blocking.hierarchy();
    const Cache *pairs[][2] = {{&lh.l1i(), &bh.l1i()},
                               {&lh.l1d(), &bh.l1d()},
                               {&lh.l2(), &bh.l2()}};
    for (const auto &pair : pairs) {
        EXPECT_EQ(pair[0]->hits(), pair[1]->hits())
            << pair[0]->params().name;
        EXPECT_EQ(pair[0]->misses(), pair[1]->misses())
            << pair[0]->params().name;
        EXPECT_EQ(pair[0]->fills(), pair[1]->fills())
            << pair[0]->params().name;
    }
    EXPECT_TRUE(bh.mshrDrained());
}

TEST(MshrTiming, InOrderMshrOneMatchesMshrEight)
{
    // The blocking core can never overlap misses, so the entry count
    // must be irrelevant to it.
    const Program p = mixedKernel(30);
    SimConfig one, eight;
    one.inOrder = eight.inOrder = true;
    one.memory.mshrEntries = 1;
    eight.memory.mshrEntries = 8;
    InOrderCore a(p, one), b(p, eight);
    a.run(~std::uint64_t{0}, 10'000'000);
    b.run(~std::uint64_t{0}, 10'000'000);
    EXPECT_EQ(a.cycle(), b.cycle());
    EXPECT_EQ(a.committedInsts(), b.committedInsts());
}

} // namespace
} // namespace nda
