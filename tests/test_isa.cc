/**
 * @file
 * Unit tests for the ISA layer: opcode traits, micro-op disassembly,
 * the program builder, and the shared functional semantics.
 */

#include <gtest/gtest.h>

#include "isa/interpreter.hh"
#include "isa/opcode.hh"
#include "isa/program.hh"

namespace nda {
namespace {

TEST(OpTraits, LoadStoreClassification)
{
    EXPECT_TRUE(opTraits(Opcode::kLoad).isLoad);
    EXPECT_TRUE(opTraits(Opcode::kLoad).isLoadLike);
    EXPECT_TRUE(opTraits(Opcode::kStore).isStore);
    EXPECT_FALSE(opTraits(Opcode::kStore).isLoad);
    // RDMSR is load-like for NDA but not a memory load (paper §5.2).
    EXPECT_TRUE(opTraits(Opcode::kRdMsr).isLoadLike);
    EXPECT_FALSE(opTraits(Opcode::kRdMsr).isLoad);
}

TEST(OpTraits, BranchClassification)
{
    EXPECT_TRUE(opTraits(Opcode::kBeq).isCondBranch);
    EXPECT_TRUE(opTraits(Opcode::kBeq).isSpeculable);
    // Direct unconditional jumps never mispredict (paper §5.1).
    EXPECT_TRUE(opTraits(Opcode::kJmp).isBranch);
    EXPECT_FALSE(opTraits(Opcode::kJmp).isSpeculable);
    EXPECT_FALSE(opTraits(Opcode::kCall).isSpeculable);
    EXPECT_TRUE(opTraits(Opcode::kCall).isCall);
    EXPECT_TRUE(opTraits(Opcode::kCall).hasDest);
    EXPECT_TRUE(opTraits(Opcode::kJmpReg).isIndirect);
    EXPECT_TRUE(opTraits(Opcode::kJmpReg).isSpeculable);
    EXPECT_TRUE(opTraits(Opcode::kRet).isReturn);
    EXPECT_TRUE(opTraits(Opcode::kCallReg).isCall);
}

TEST(OpTraits, SerializingOps)
{
    EXPECT_TRUE(opTraits(Opcode::kRdTsc).serializeAtHead);
    EXPECT_TRUE(opTraits(Opcode::kFence).serializeAtHead);
    EXPECT_TRUE(opTraits(Opcode::kWrMsr).serializeAtHead);
    EXPECT_FALSE(opTraits(Opcode::kRdMsr).serializeAtHead);
}

TEST(OpTraits, EveryOpcodeHasMnemonic)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(Opcode::kNumOpcodes); ++i) {
        EXPECT_FALSE(opName(static_cast<Opcode>(i)).empty());
    }
}

TEST(OpTraits, LatencyCycles)
{
    EXPECT_EQ(opLatencyCycles(Opcode::kAdd), 1u);
    EXPECT_EQ(opLatencyCycles(Opcode::kMul), 3u);
    EXPECT_EQ(opLatencyCycles(Opcode::kDiv), 12u);
}

TEST(MicroOp, DisasmFormats)
{
    MicroOp ld;
    ld.op = Opcode::kLoad;
    ld.rd = 3;
    ld.rs1 = 4;
    ld.imm = 8;
    ld.size = 4;
    EXPECT_EQ(ld.disasm(), "ld r3, [r4+8] (4)");

    MicroOp add;
    add.op = Opcode::kAdd;
    add.rd = 1;
    add.rs1 = 2;
    add.rs2 = 3;
    EXPECT_EQ(add.disasm(), "add r1, r2, r3");

    MicroOp br;
    br.op = Opcode::kBlt;
    br.rs1 = 5;
    br.rs2 = 6;
    br.imm = 42;
    EXPECT_EQ(br.disasm(), "blt r5, r6, 42");
}

TEST(ProgramBuilder, ForwardLabelFixup)
{
    ProgramBuilder b("t");
    auto end = b.futureLabel();
    b.jmp(end);
    b.nop();
    b.bind(end);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.code[0].imm, 2);
}

TEST(ProgramBuilder, BackwardLabel)
{
    ProgramBuilder b("t");
    b.movi(1, 0);
    auto loop = b.label();
    b.addi(1, 1, 1);
    b.movi(2, 3);
    b.blt(1, 2, loop);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.code[3].imm, 1);
}

TEST(ProgramBuilder, PadToPcInsertsNops)
{
    ProgramBuilder b("t");
    b.nop();
    b.padToPc(10);
    EXPECT_EQ(b.here(), 10u);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.code.size(), 11u);
    EXPECT_EQ(p.code[5].op, Opcode::kNop);
}

TEST(ProgramBuilder, WordSegmentLittleEndian)
{
    ProgramBuilder b("t");
    b.word(0x1000, 0x1122334455667788ULL);
    b.halt();
    Program p = b.build();
    ASSERT_EQ(p.data.size(), 1u);
    EXPECT_EQ(p.data[0].bytes[0], 0x88);
    EXPECT_EQ(p.data[0].bytes[7], 0x11);
}

TEST(ProgramBuilder, InitMsrPrivileged)
{
    ProgramBuilder b("t");
    b.initMsr(3, 99, true);
    b.initMsr(1, 5, false);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.initialMsrs[3], 99u);
    EXPECT_TRUE(p.privilegedMsrMask & (1 << 3));
    EXPECT_FALSE(p.privilegedMsrMask & (1 << 1));
}

TEST(ProgramBuilder, FaultHandlerResolved)
{
    ProgramBuilder b("t");
    b.nop();
    auto h = b.label();
    b.halt();
    b.faultHandlerAt(h);
    Program p = b.build();
    EXPECT_EQ(p.faultHandler, 1u);
}

TEST(EvalAlu, ArithmeticSemantics)
{
    EXPECT_EQ(evalAlu(Opcode::kAdd, 2, 3, 0), 5u);
    EXPECT_EQ(evalAlu(Opcode::kSub, 2, 3, 0), static_cast<RegVal>(-1));
    EXPECT_EQ(evalAlu(Opcode::kMul, 7, 6, 0), 42u);
    EXPECT_EQ(evalAlu(Opcode::kDiv, 42, 6, 0), 7u);
    EXPECT_EQ(evalAlu(Opcode::kDiv, 42, 0, 0), 0u) << "div-by-0 is 0";
    EXPECT_EQ(evalAlu(Opcode::kShl, 1, 65, 0), 2u) << "shift mod 64";
    EXPECT_EQ(evalAlu(Opcode::kAndImm, 0xFF, 0, 0x0F), 0x0Fu);
    EXPECT_EQ(evalAlu(Opcode::kMovImm, 0, 0, -5),
              static_cast<RegVal>(-5));
}

TEST(EvalAlu, Comparisons)
{
    EXPECT_EQ(evalAlu(Opcode::kCmpEq, 3, 3, 0), 1u);
    EXPECT_EQ(evalAlu(Opcode::kCmpLt, static_cast<RegVal>(-1), 1, 0),
              1u)
        << "signed compare";
    EXPECT_EQ(evalAlu(Opcode::kCmpLtu, static_cast<RegVal>(-1), 1, 0),
              0u)
        << "unsigned compare";
}

TEST(EvalCondBranch, AllConditions)
{
    EXPECT_TRUE(evalCondBranch(Opcode::kBeq, 1, 1));
    EXPECT_TRUE(evalCondBranch(Opcode::kBne, 1, 2));
    EXPECT_TRUE(
        evalCondBranch(Opcode::kBlt, static_cast<RegVal>(-2), 1));
    EXPECT_FALSE(
        evalCondBranch(Opcode::kBltu, static_cast<RegVal>(-2), 1));
    EXPECT_TRUE(evalCondBranch(Opcode::kBge, 5, 5));
    EXPECT_TRUE(
        evalCondBranch(Opcode::kBgeu, static_cast<RegVal>(-1), 5));
}

TEST(EvalNextPc, BranchTargets)
{
    MicroOp jmp;
    jmp.op = Opcode::kJmp;
    jmp.imm = 99;
    EXPECT_EQ(evalNextPc(jmp, 10, 0, 0), 99u);

    MicroOp beq;
    beq.op = Opcode::kBeq;
    beq.imm = 50;
    EXPECT_EQ(evalNextPc(beq, 10, 1, 1), 50u);
    EXPECT_EQ(evalNextPc(beq, 10, 1, 2), 11u);

    MicroOp ret;
    ret.op = Opcode::kRet;
    EXPECT_EQ(evalNextPc(ret, 10, 1234, 0), 1234u);

    MicroOp add;
    add.op = Opcode::kAdd;
    EXPECT_EQ(evalNextPc(add, 10, 0, 0), 11u);
}

} // namespace
} // namespace nda
