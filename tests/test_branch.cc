/**
 * @file
 * Tests for the branch-prediction substrate: tournament direction
 * predictor, BTB (including the security-relevant partial-tag
 * aliasing), RAS, and the composed predictor unit's checkpoint
 * protocol.
 */

#include <gtest/gtest.h>

#include "branch/btb.hh"
#include "branch/direction_predictor.hh"
#include "branch/predictor_unit.hh"
#include "branch/ras.hh"

namespace nda {
namespace {

TEST(DirectionPredictor, LearnsAlwaysTaken)
{
    DirectionPredictor dp;
    for (int i = 0; i < 8; ++i) {
        const auto h = dp.history();
        dp.predict(100);
        dp.update(100, true, h);
    }
    EXPECT_TRUE(dp.predict(100));
}

TEST(DirectionPredictor, LearnsAlternatingPatternViaGshare)
{
    DirectionPredictor dp;
    // Train T/N/T/N... — gshare with history separates the contexts.
    // As in the pipeline, a mispredict restores history and re-applies
    // the actual outcome, so the history always holds real directions.
    auto step = [&dp](bool taken) {
        const auto h = dp.history();
        const bool pred = dp.predict(200);
        if (pred != taken) {
            dp.restoreHistory(h);
            dp.pushHistory(taken);
        }
        dp.update(200, taken, h);
        return pred;
    };
    bool taken = false;
    for (int i = 0; i < 200; ++i) {
        taken = !taken;
        step(taken);
    }
    int correct = 0;
    for (int i = 0; i < 50; ++i) {
        taken = !taken;
        correct += step(taken) == taken;
    }
    EXPECT_GT(correct, 45);
}

TEST(DirectionPredictor, HistoryRestoreUndoesSpeculation)
{
    DirectionPredictor dp;
    const auto h0 = dp.history();
    dp.predict(1);
    dp.predict(2);
    dp.restoreHistory(h0);
    EXPECT_EQ(dp.history(), h0);
}

TEST(DirectionPredictor, PushHistoryShifts)
{
    DirectionPredictor dp;
    dp.restoreHistory(0);
    dp.pushHistory(true);
    dp.pushHistory(false);
    dp.pushHistory(true);
    EXPECT_EQ(dp.history(), 0b101u);
}

TEST(Btb, InstallAndLookup)
{
    Btb btb;
    EXPECT_FALSE(btb.lookup(100).has_value());
    btb.update(100, 2000);
    auto t = btb.lookup(100);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 2000u);
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb btb;
    btb.update(100, 2000);
    btb.update(100, 3000);
    EXPECT_EQ(*btb.lookup(100), 3000u);
}

TEST(Btb, SetAssociativeEviction)
{
    BtbParams p;
    p.entries = 8;
    p.ways = 2; // 4 sets
    Btb btb(p);
    // Three branches in set 0 with 2 ways -> one eviction.
    btb.update(0, 10);
    btb.update(4, 20);
    btb.update(0, 10);   // refresh
    btb.update(8, 30);   // evicts pc=4
    EXPECT_TRUE(btb.probe(0).has_value());
    EXPECT_FALSE(btb.probe(4).has_value());
    EXPECT_TRUE(btb.probe(8).has_value());
}

TEST(Btb, PartialTagAliasing)
{
    // The Spectre-v2 substrate: with a t-bit partial tag and S sets,
    // branches S << t instructions apart alias.
    BtbParams p;
    p.entries = 4096;
    p.ways = 4; // 1024 sets
    p.tagBits = 4;
    Btb btb(p);
    const Addr victim = 123;
    const Addr alias = victim + (1024u << 4);
    btb.update(alias, 777);
    auto t = btb.lookup(victim);
    ASSERT_TRUE(t.has_value()) << "aliased entry must hit";
    EXPECT_EQ(*t, 777u);
}

TEST(Btb, FullTagNoAliasing)
{
    BtbParams p; // default 16-bit tag
    Btb btb(p);
    btb.update(123 + (1024u << 4), 777);
    EXPECT_FALSE(btb.probe(123).has_value());
}

TEST(Ras, PushPopOrder)
{
    Ras ras(16);
    ras.push(10);
    ras.push(20);
    EXPECT_EQ(ras.pop(), 20u);
    EXPECT_EQ(ras.pop(), 10u);
}

TEST(Ras, WrapsAtCapacity)
{
    Ras ras(4);
    for (Addr i = 1; i <= 6; ++i)
        ras.push(i * 10);
    // Oldest entries were overwritten; the top 4 remain.
    EXPECT_EQ(ras.pop(), 60u);
    EXPECT_EQ(ras.pop(), 50u);
    EXPECT_EQ(ras.pop(), 40u);
    EXPECT_EQ(ras.pop(), 30u);
}

TEST(Ras, CheckpointUndoesPush)
{
    Ras ras(8);
    ras.push(11);
    const auto ckpt = ras.checkpoint();
    ras.push(22);
    ras.restore(ckpt);
    EXPECT_EQ(ras.pop(), 11u);
}

TEST(Ras, CheckpointUndoesPop)
{
    Ras ras(8);
    ras.push(11);
    ras.push(22);
    const auto ckpt = ras.checkpoint();
    ras.pop();
    ras.restore(ckpt);
    EXPECT_EQ(ras.pop(), 22u);
    EXPECT_EQ(ras.pop(), 11u);
}

MicroOp
makeBranch(Opcode op, std::int64_t imm = 0)
{
    MicroOp u;
    u.op = op;
    u.rd = 30;
    u.rs1 = 5;
    u.imm = imm;
    return u;
}

TEST(PredictorUnit, DirectCallPushesRas)
{
    PredictorUnit pu;
    auto pred = pu.predict(makeBranch(Opcode::kCall, 100), 10);
    EXPECT_EQ(pred.nextPc, 100u);
    MicroOp ret = makeBranch(Opcode::kRet);
    auto rp = pu.predict(ret, 150);
    EXPECT_EQ(rp.nextPc, 11u) << "RAS should predict the return";
}

TEST(PredictorUnit, IndirectMissPredictsFallThrough)
{
    PredictorUnit pu;
    auto pred = pu.predict(makeBranch(Opcode::kJmpReg), 10);
    EXPECT_TRUE(pred.btbMiss);
    EXPECT_EQ(pred.nextPc, 11u);
    pu.btbUpdate(10, 500);
    auto pred2 = pu.predict(makeBranch(Opcode::kJmpReg), 10);
    EXPECT_TRUE(pred2.fromBtb);
    EXPECT_EQ(pred2.nextPc, 500u);
}

TEST(PredictorUnit, RestoreUndoesRasAndHistory)
{
    PredictorUnit pu;
    pu.predict(makeBranch(Opcode::kCall, 100), 10); // push 11
    auto pred = pu.predict(makeBranch(Opcode::kCall, 200), 100);
    pu.restore(pred.ckpt); // undo second push
    auto rp = pu.predict(makeBranch(Opcode::kRet), 150);
    EXPECT_EQ(rp.nextPc, 11u);
}

TEST(PredictorUnit, ApplyResolvedReplaysActualOutcome)
{
    PredictorUnit pu;
    auto pred = pu.predict(makeBranch(Opcode::kBeq, 50), 10);
    const auto h_before = pred.ckpt.history;
    pu.restore(pred.ckpt);
    pu.applyResolved(makeBranch(Opcode::kBeq, 50), 10, true, 50);
    EXPECT_EQ(pu.direction().history(), ((h_before << 1) | 1));
}

} // namespace
} // namespace nda
