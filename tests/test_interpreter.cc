/**
 * @file
 * Tests of the architectural reference interpreter — the oracle all
 * timing cores are differentially tested against.
 */

#include <gtest/gtest.h>

#include "isa/interpreter.hh"
#include "isa/program.hh"

namespace nda {
namespace {

Program
simpleLoop()
{
    ProgramBuilder b("loop");
    b.movi(1, 0);
    b.movi(2, 10);
    auto loop = b.label();
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.build();
}

TEST(Interpreter, CountedLoop)
{
    Program p = simpleLoop();
    Interpreter it(p);
    it.run(1000);
    EXPECT_TRUE(it.halted());
    EXPECT_EQ(it.reg(1), 10u);
}

TEST(Interpreter, LoadStoreRoundTrip)
{
    ProgramBuilder b("mem");
    b.zeroSegment(0x1000, 64);
    b.movi(1, 0x1000);
    b.movi(2, 0xDEADBEEF);
    b.store(1, 0, 2, 4);
    b.load(3, 1, 0, 4);
    b.load(4, 1, 0, 2);
    b.load(5, 1, 2, 2);
    b.load(6, 1, 0, 1);
    b.halt();
    Interpreter it(b.build());
    it.run(100);
    EXPECT_EQ(it.reg(3), 0xDEADBEEFu);
    EXPECT_EQ(it.reg(4), 0xBEEFu);
    EXPECT_EQ(it.reg(5), 0xDEADu);
    EXPECT_EQ(it.reg(6), 0xEFu);
}

TEST(Interpreter, UnalignedAndCrossPage)
{
    ProgramBuilder b("cross");
    b.zeroSegment(0x1000, 8192);
    b.movi(1, 0x1FFC);              // 4 bytes below a page boundary
    b.movi(2, 0x0102030405060708ULL);
    b.store(1, 0, 2, 8);            // crosses into the next page
    b.load(3, 1, 0, 8);
    b.load(4, 1, 4, 4);
    b.halt();
    Interpreter it(b.build());
    it.run(100);
    EXPECT_EQ(it.reg(3), 0x0102030405060708ULL);
    EXPECT_EQ(it.reg(4), 0x01020304u);
}

TEST(Interpreter, CallAndReturn)
{
    ProgramBuilder b("call");
    auto main_l = b.futureLabel();
    b.jmp(main_l);
    auto fn = b.label();
    b.addi(2, 2, 5);
    b.ret(30);
    b.bind(main_l);
    b.movi(2, 0);
    b.call(30, fn);
    b.call(30, fn);
    b.halt();
    Interpreter it(b.build());
    it.run(100);
    EXPECT_TRUE(it.halted());
    EXPECT_EQ(it.reg(2), 10u);
}

TEST(Interpreter, IndirectCallThroughTable)
{
    ProgramBuilder b("icall");
    auto main_l = b.futureLabel();
    b.jmp(main_l);
    const Addr fn_pc = b.here();
    b.movi(3, 77);
    b.ret(28);
    b.word(0x2000, fn_pc);
    b.bind(main_l);
    b.movi(1, 0x2000);
    b.load(2, 1, 0, 8);
    b.callr(28, 2);
    b.halt();
    Interpreter it(b.build());
    it.run(100);
    EXPECT_EQ(it.reg(3), 77u);
}

TEST(Interpreter, KernelLoadFaultsWithoutHandler)
{
    ProgramBuilder b("fault");
    b.segment(0x4000, {0x5A}, MemPerm::kKernel);
    b.movi(1, 0x4000);
    b.load(2, 1, 0, 1);
    b.movi(3, 1); // never reached
    b.halt();
    Interpreter it(b.build());
    it.run(100);
    EXPECT_TRUE(it.halted());
    EXPECT_EQ(it.faultCount(), 1u);
    EXPECT_EQ(it.reg(2), 0u) << "faulting load must not write rd";
    EXPECT_EQ(it.reg(3), 0u);
}

TEST(Interpreter, FaultHandlerRedirects)
{
    ProgramBuilder b("handler");
    b.segment(0x4000, {0x5A}, MemPerm::kKernel);
    b.movi(1, 0x4000);
    b.load(2, 1, 0, 1);
    b.halt();                        // skipped by the fault
    auto handler = b.label();
    b.movi(3, 42);
    b.halt();
    b.faultHandlerAt(handler);
    Interpreter it(b.build());
    it.run(100);
    EXPECT_EQ(it.reg(3), 42u);
    EXPECT_EQ(it.faultCount(), 1u);
}

TEST(Interpreter, KernelStoreFaults)
{
    ProgramBuilder b("sfault");
    b.segment(0x4000, {0x00}, MemPerm::kKernel);
    b.movi(1, 0x4000);
    b.movi(2, 7);
    b.store(1, 0, 2, 1);
    b.halt();
    Interpreter it(b.build());
    it.run(100);
    EXPECT_EQ(it.faultCount(), 1u);
    EXPECT_EQ(it.mem().read(0x4000, 1), 0x00u)
        << "faulting store must not write memory";
}

TEST(Interpreter, PrivilegedMsrFaults)
{
    ProgramBuilder b("msr");
    b.initMsr(2, 1234, true);
    b.initMsr(1, 55, false);
    b.rdmsr(3, 1);
    b.rdmsr(4, 2);                   // faults
    b.halt();
    Interpreter it(b.build());
    it.run(100);
    EXPECT_EQ(it.reg(3), 55u);
    EXPECT_EQ(it.reg(4), 0u);
    EXPECT_EQ(it.faultCount(), 1u);
}

TEST(Interpreter, WrMsrRoundTrip)
{
    ProgramBuilder b("wrmsr");
    b.movi(1, 999);
    b.wrmsr(0, 1);
    b.rdmsr(2, 0);
    b.halt();
    Interpreter it(b.build());
    it.run(100);
    EXPECT_EQ(it.reg(2), 999u);
    EXPECT_EQ(it.msr(0), 999u);
}

TEST(Interpreter, RunsOffEndHalts)
{
    ProgramBuilder b("off");
    b.nop();
    Program p = b.build();
    Interpreter it(p);
    it.run(100);
    EXPECT_TRUE(it.halted());
}

TEST(Interpreter, MaxInstsBound)
{
    ProgramBuilder b("inf");
    auto top = b.label();
    b.jmp(top);
    Interpreter it(b.build());
    const auto n = it.run(500);
    EXPECT_EQ(n, 500u);
    EXPECT_FALSE(it.halted());
}

TEST(Interpreter, LinkRegisterSemantics)
{
    // callr with rd == rs1: target must be the OLD register value.
    ProgramBuilder b("link");
    auto main_l = b.futureLabel();
    b.jmp(main_l);
    const Addr fn_pc = b.here();
    b.movi(5, 1);
    b.ret(28);
    b.bind(main_l);
    b.movi(28, static_cast<std::int64_t>(fn_pc));
    b.callr(28, 28);
    b.halt();
    Interpreter it(b.build());
    it.run(100);
    EXPECT_TRUE(it.halted());
    EXPECT_EQ(it.reg(5), 1u);
}

} // namespace
} // namespace nda
